// Endpoint — the sans-I/O session layer (quiche/h2-style).
//
// One Endpoint owns one store::ContentStore — N registered contents, each
// a NodeProtocol (LTNC, RLNC, WC, an LT sink) or a GenerationedLtnc — and
// runs the paper's transfer conversation (§III-C) as a per-(peer, content)
// state machine, with **no sockets, no clocks and no allocation at steady
// state**:
//
//      application           Endpoint                transport
//   start_transfer() ──▶ ┌──────────────┐
//   offer_packet()       │ per-peer,    │ ──▶ poll_transmit() ──▶ send()
//   next_push()          │ per-content  │
//   announce_cc()        │ handshake    │
//   tick(now)        ──▶ │ state        │ ◀── handle_frame() ◀── recv()
//                        └──────────────┘
//
// The conversation per transfer, sender S → receiver R:
//
//   S  kAdvertise (content id [+ generation] + code vector + dims;
//      byte-identical to the data frame minus its payload) ──▶ R
//   R  kAbort  (veto: the vector is useless to R)            ──▶ S  done
//   R  kProceed (go ahead)                                   ──▶ S
//   S  kCodedPacket / kGenerationPacket (the payload)        ──▶ R  done
//
// Multi-content sessions: every frame carries its ContentId (zero wire
// bytes for the default content 0, so single-content traffic is
// byte-identical to the pre-store implementation); conversations,
// completion acks and cc caches are per (peer, content); next_push() asks
// the SwarmScheduler which content a push slot should carry
// (rarest-generation-first, round-robin fallback) under a token-bucket
// pacer refilled by tick() — an endpoint serving hundreds of contents
// must not burst-flood a real UDP link.
//
// FeedbackMode::kNone skips the handshake (data is pushed directly);
// kSmart additionally lets R ship its cc array (announce_cc → kCcArray),
// which S caches per (peer, content) and consumes on its next
// start_transfer via emit_for(). A completed content announces itself
// with a kAck carrying the delivered-frame count (announce_completion),
// which the file sender uses as its per-content stop signal.
//
// Reliability is the application's loop plus two timers: an advertise
// awaiting feedback retransmits on tick() until max_retries, and replayed
// frames are suppressed (a re-advertise of the vector we already answered
// re-sends the answer; a duplicate kProceed never double-sends data; data
// frames the protocol has already absorbed reduce to duplicates inside the
// protocol itself — rateless codes make payload retransmission pointless,
// so lost data simply costs the gossip loop one more exchange).
//
// Everything in and out is an arena-leased wire::Frame; poll_transmit
// recycles the caller's buffer into the queue slot it drains, so the
// handle_frame → poll_transmit loop never touches the global heap once
// warm (tests/steady_state_alloc_test.cpp holds this to zero).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bitvector.hpp"
#include "common/coded_packet.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "session/protocols.hpp"
#include "store/content_store.hpp"
#include "store/swarm_scheduler.hpp"
#include "telemetry/telemetry.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace ltnc::session {

/// Opaque peer handle. The transport glue owns the mapping to real
/// addresses (a socket peer, a simulator NodeId, a channel index).
using PeerId = std::uint32_t;

/// Abstract session time. tick() only compares and adds Instants, so the
/// unit is the application's choice (gossip rounds, poll iterations,
/// milliseconds) — there is no clock anywhere in the session layer.
using Instant = std::uint64_t;

struct EndpointConfig {
  /// Expected dimensions of the default content (id 0) when the endpoint
  /// is built over a single protocol; ignored (may stay 0) when a
  /// ContentStore supplies per-content dimensions. Frames addressing a
  /// known content with any other k/m are dropped as foreign traffic (a
  /// stray datagram on an open port must never poison the protocol).
  std::size_t k = 0;
  std::size_t payload_bytes = 0;
  FeedbackMode feedback = FeedbackMode::kBinary;
  /// Ticks an advertise waits for abort/proceed before retransmitting,
  /// and an accepted advertise waits for its data before resetting.
  Instant response_timeout = 8;
  /// Advertise retransmissions before the transfer is abandoned. Also the
  /// completion-announce retransmission budget.
  std::uint32_t max_retries = 4;
  /// Queue a kAck (token = data frames delivered) to the last data sender
  /// when a content completes, and re-queue it on tick() while the
  /// session stays alive — the stop signal of a file transfer.
  bool announce_completion = false;
  /// Token-bucket pacer over next_push(): tokens added per tick-unit, 0 =
  /// unpaced. Only scheduler-driven pushes pay tokens — handshake answers
  /// and retransmissions always flow, so pacing can never deadlock a
  /// conversation.
  double pace_tokens_per_tick = 0.0;
  /// Bucket capacity: the largest burst next_push() can emit after idling.
  double pace_burst = 8.0;
  /// Capacity of the recently-expired content ring (see expire_content).
  /// The default covers a stream's in-flight window many times over;
  /// catalog workloads where hundreds of contents churn per window (an
  /// edge cache under content replacement) should size it to the churn
  /// horizon. 0 disables the ring entirely: late frames for expired
  /// contents then degrade to foreign_frames — accounting, not
  /// correctness.
  std::size_t expired_ring = 128;
};

/// One struct unifying the counters that used to be scattered over the
/// simulator, the UDP example loops and ad-hoc locals. Frame counts and
/// byte totals are measured (every frame crosses the wire codec).
struct SessionStats {
  // -- conversations, sender side
  std::uint64_t offers = 0;                 ///< transfers initiated locally
  std::uint64_t advertises_sent = 0;        ///< first transmissions only
  std::uint64_t advertise_retransmits = 0;  ///< timer-driven re-sends
  std::uint64_t aborts_received = 0;        ///< transfers vetoed by the peer
  std::uint64_t proceeds_received = 0;
  std::uint64_t data_sent = 0;              ///< payload frames queued
  std::uint64_t transfers_abandoned = 0;    ///< retries exhausted/superseded
  // -- conversations, receiver side
  std::uint64_t advertises_received = 0;
  std::uint64_t aborts_sent = 0;
  std::uint64_t proceeds_sent = 0;
  std::uint64_t data_delivered = 0;         ///< handed to the protocol
  std::uint64_t unsolicited_data = 0;       ///< no matching advertise
  std::uint64_t overheard = 0;              ///< snooped packets kept
  // -- smart feedback
  std::uint64_t cc_sent = 0;
  std::uint64_t cc_received = 0;
  // -- completion announcements
  std::uint64_t completions_sent = 0;       ///< includes re-announcements
  std::uint64_t completions_received = 0;
  // -- swarm scheduling
  std::uint64_t swarm_pushes = 0;           ///< next_push() picks granted
  std::uint64_t pacer_deferrals = 0;        ///< next_push() bucket empty
  // -- hygiene
  std::uint64_t duplicates_suppressed = 0;  ///< replayed frames absorbed
  std::uint64_t timeouts = 0;               ///< inbound conversations reset
  std::uint64_t malformed_frames = 0;       ///< failed the hardened decode
  std::uint64_t foreign_frames = 0;         ///< unknown content id, wrong
                                            ///< k/m, or data at a
                                            ///< receiver-less content
  // -- sliding-window expiry (streaming)
  std::uint64_t contents_expired = 0;       ///< expire_content() removals
  std::uint64_t expired_frames = 0;         ///< late frames for a recently
                                            ///< expired content — counted
                                            ///< here and nowhere else
  // -- totals (frames_sent counts frames popped via poll_transmit; a
  // transport may still refuse one, so socket-level tallies belong to
  // the transport glue)
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  /// Aggregation across a fleet of endpoints (the simulator's summary).
  SessionStats& operator+=(const SessionStats& o) {
    offers += o.offers;
    advertises_sent += o.advertises_sent;
    advertise_retransmits += o.advertise_retransmits;
    aborts_received += o.aborts_received;
    proceeds_received += o.proceeds_received;
    data_sent += o.data_sent;
    transfers_abandoned += o.transfers_abandoned;
    advertises_received += o.advertises_received;
    aborts_sent += o.aborts_sent;
    proceeds_sent += o.proceeds_sent;
    data_delivered += o.data_delivered;
    unsolicited_data += o.unsolicited_data;
    overheard += o.overheard;
    cc_sent += o.cc_sent;
    cc_received += o.cc_received;
    completions_sent += o.completions_sent;
    completions_received += o.completions_received;
    swarm_pushes += o.swarm_pushes;
    pacer_deferrals += o.pacer_deferrals;
    duplicates_suppressed += o.duplicates_suppressed;
    timeouts += o.timeouts;
    malformed_frames += o.malformed_frames;
    foreign_frames += o.foreign_frames;
    contents_expired += o.contents_expired;
    expired_frames += o.expired_frames;
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    return *this;
  }
};

class Endpoint {
 public:
  /// What a consumed frame meant — returned by handle_frame so transport
  /// glue (and the simulator's ledger) can react without peeking into the
  /// endpoint's state.
  enum class Event : std::uint8_t {
    kNone,             ///< consumed silently (stale/duplicate/foreign)
    kAborted,          ///< we vetoed an advertise (abort frame queued)
    kProceeding,       ///< we accepted an advertise (proceed frame queued)
    kDelivered,        ///< a payload reached our protocol
    kAbortReceived,    ///< our transfer was vetoed; conversation closed
    kProceedReceived,  ///< go-ahead received; data frame queued
    kAckReceived,      ///< the peer announced a content's completion
    kCcReceived,       ///< the peer's cc array was cached
    kMalformed,        ///< frame failed the hardened decode
    kExpired,          ///< late frame for a recently expired content
  };

  /// Single-content endpoint: `protocol` becomes the default content
  /// (id 0) with the config's dimensions. May be null: a protocol-less
  /// endpoint is a pure sender (offer_packet) that still runs the
  /// handshake and understands abort/proceed/ack — the shape of a
  /// fountain-code file seeder.
  Endpoint(const EndpointConfig& config,
           std::unique_ptr<NodeProtocol> protocol);

  /// Disambiguates Endpoint(cfg, nullptr) — the protocol-less seeder.
  Endpoint(const EndpointConfig& config, std::nullptr_t)
      : Endpoint(config, std::unique_ptr<NodeProtocol>()) {}

  /// Multi-content endpoint over a caller-assembled store.
  Endpoint(const EndpointConfig& config,
           std::unique_ptr<store::ContentStore> contents);

  const EndpointConfig& config() const { return cfg_; }
  store::ContentStore& contents() { return *store_; }
  const store::ContentStore& contents() const { return *store_; }
  /// The default content's protocol (legacy single-content surface);
  /// null when content 0 is unregistered, protocol-less or generationed.
  NodeProtocol* protocol();
  const NodeProtocol* protocol() const;
  const SessionStats& stats() const { return stats_; }

  /// Every content with decode state has fully decoded (false when none
  /// has decode state — a pure seeder is never "complete").
  bool complete() const { return store_->all_complete(); }
  /// Aggressiveness gate (false for protocol-less and sink endpoints).
  bool can_push() const;

  // --- application surface -------------------------------------------------

  /// Starts a transfer of the default content toward `peer` with a packet
  /// emitted by its protocol (emit_for when a fresh cc array from that
  /// peer is cached — the cache is consumed either way). Returns false
  /// when the protocol has nothing to say. Supersedes any transfer of the
  /// same content to `peer` still awaiting feedback.
  bool start_transfer(PeerId peer, Rng& rng);
  /// Multi-content variant; generationed contents recode from their
  /// scarcest generation (rarest-generation-first).
  bool start_transfer(PeerId peer, ContentId content, Rng& rng);

  /// Scheduler surface: picks which content the next push slot toward
  /// `peer` should carry — rarest-first over the store with a round-robin
  /// fallback, skipping contents that cannot emit, whose conversation to
  /// `peer` is still awaiting feedback, or that `peer` has acked complete
  /// — and charges the pacer one token. Returns nullptr when nothing is
  /// eligible or the bucket is empty; follow up with
  /// start_transfer(peer, content->id(), rng).
  ///
  /// Draining the bucket with `while (next_push(...)) start_transfer(...)`
  /// terminates for handshake modes (every started transfer awaits
  /// feedback) or paced endpoints (the bucket empties). Under
  /// FeedbackMode::kNone with pacing disabled nothing ever becomes
  /// ineligible, so every call grants a pick — bound the loop externally
  /// (e.g. one pick per push slot, as the simulator does).
  const store::Content* next_push(PeerId peer);

  /// Starts a transfer toward `peer` with an externally built packet (a
  /// source encoder, a replayed store). Always succeeds.
  void offer_packet(PeerId peer, const CodedPacket& packet);
  void offer_packet(PeerId peer, ContentId content, const CodedPacket& packet);
  /// Generation-scoped offer: the payload travels as kGenerationPacket.
  void offer_packet(PeerId peer, ContentId content, std::uint32_t generation,
                    const CodedPacket& packet);

  /// Queues this node's cc array for a content toward `peer` (smart
  /// feedback §III-C.2). False when the content has none to ship.
  bool announce_cc(PeerId peer);
  bool announce_cc(PeerId peer, ContentId content);

  /// Wireless snoop (§VI): consume a packet overheard off someone else's
  /// transfer — no frames, no handshake. Returns true if the protocol
  /// kept it.
  bool overhear(const CodedPacket& packet);
  bool overhear(ContentId content, const CodedPacket& packet);

  /// True once a kAck arrived from any peer for any content; token() is
  /// its payload (the receiver's delivered-frame count).
  bool peer_completed() const { return peer_completed_; }
  std::uint64_t peer_completion_token() const { return completion_token_; }
  /// Per-(peer, content) completion knowledge from kAck frames.
  bool peer_completed(PeerId peer, ContentId content) const;
  /// Has `peer` acked every registered content? (The multi-file sender's
  /// stop signal.)
  bool peer_completed_all(PeerId peer) const;

  /// Number of peers this endpoint holds conversation state for. Memory
  /// scales with this, not with the PeerId address space — the flyweight
  /// property the event simulator's fleet accounting leans on.
  std::size_t contacted_peers() const { return peers_.size(); }

  /// Is a transfer of `content` toward `peer` still waiting for its
  /// abort/proceed answer? Drivers that offer packets in a loop (the
  /// swarm seeder's pump) use this to avoid superseding — and thereby
  /// abandoning — a conversation the handshake hasn't resolved yet.
  bool awaiting_feedback(PeerId peer, ContentId content) const;

  /// Attaches observer-only instruments (latency histograms, flight
  /// recorder). Null pointers inside the bundle — or a null bundle —
  /// disable the corresponding instrument; the endpoint never draws RNG
  /// or sends bytes on their behalf. The bundle must outlive the
  /// endpoint. No-op when built with LTNC_TELEMETRY=OFF.
  void set_telemetry(const telemetry::SessionInstruments* instruments) {
    telemetry_ = instruments;
  }

  /// Unregisters `content` and tears down every trace of it: all
  /// per-(peer, content) conversations close (a transfer still awaiting
  /// feedback counts as abandoned), pending payload leases go back to the
  /// arena, per-content side tables shrink, and the id enters a small
  /// ring of recently expired contents. Frames that later address a
  /// ringed id are counted as `expired_frames` (and nothing else) rather
  /// than foreign — under a sliding stream window, late packets for a
  /// block whose deadline passed are expected traffic, not port noise.
  /// Frames already serialized into the transmit queue still depart, like
  /// datagrams in flight. Returns false when the id was not registered.
  ///
  /// The ring remembers the last 128 expiries; a stream's in-flight
  /// window is a handful of blocks, so late traffic always lands inside
  /// it. Ids older than that degrade to foreign — accounting, not
  /// correctness. Re-registering a ringed id works (the store is always
  /// consulted first); stream block ids are never reused anyway.
  bool expire_content(ContentId content);

  /// The scheduler behind next_push() — exposed so an application can
  /// install a store::PushPolicy (the streaming subsystem's
  /// earliest-deadline-first override).
  store::SwarmScheduler& scheduler() { return scheduler_; }

  /// Drops the (peer, content) conversation slot if it carries no live
  /// state — no transfer awaiting feedback, no accepted advertise waiting
  /// for data, no unconsumed cc cache, no completion knowledge — and
  /// releases the peer's whole table entry once its last conversation
  /// goes. Returns true when something was reclaimed. The event engine
  /// calls this after fire-and-forget pushes so a long scale run's
  /// source endpoint doesn't accrete a slot per node it ever touched.
  bool reclaim_idle_convo(PeerId peer, ContentId content);

  /// Token stamped into the *next* abort/proceed answer instead of the
  /// endpoint's own conversation counter. An orchestrator driving many
  /// endpoints (the epidemic simulator) uses this to impose its global
  /// transfer sequence so feedback frames are byte-identical to the
  /// pre-session implementation; standalone endpoints number their own.
  void set_feedback_token(std::uint64_t token);

  // --- transport surface (sans-I/O) ----------------------------------------

  /// Consumes one raw datagram from `peer`. Never throws on wire garbage:
  /// malformed and foreign frames are counted and dropped.
  Event handle_frame(PeerId peer, std::span<const std::uint8_t> bytes);

  /// Pops the next outbound frame into `out` (recycling its capacity) and
  /// its destination into `peer`. Returns false when nothing is pending.
  bool poll_transmit(PeerId& peer, wire::Frame& out);

  bool has_pending_transmit() const { return tx_size_ != 0; }
  std::size_t pending_transmit() const { return tx_size_; }

  /// Advances session time: refills the pacer bucket, retransmits
  /// advertises awaiting feedback, abandons them past max_retries, resets
  /// inbound conversations whose data never arrived, re-announces
  /// completions. `now` must not decrease.
  void tick(Instant now);

 private:
  struct Outbound {
    enum class State : std::uint8_t { kIdle, kAwaitFeedback };
    State state = State::kIdle;
    CodedPacket packet;  ///< pending payload (storage reused across offers)
    bool generationed = false;  ///< payload travels as kGenerationPacket
    std::uint32_t generation = 0;
    Instant deadline = 0;
    std::uint32_t retries = 0;
    Instant offered_at = 0;  ///< advertise time — handshake latency anchor
  };

  struct Inbound {
    BitVector coeffs;  ///< advertised vector we answered with a proceed
    std::uint32_t generation = 0;
    bool awaiting_data = false;
    Instant deadline = 0;
  };

  /// Conversation state for one (peer, content) pair.
  struct Convo {
    ContentId content = 0;
    Outbound out;
    Inbound in;
    std::vector<std::uint32_t> cc;  ///< freshest cc array from this peer
    bool cc_fresh = false;
    bool peer_done = false;  ///< peer acked this content complete
    bool ever_offered = false;   ///< telemetry: first_offer_at is valid
    Instant first_offer_at = 0;  ///< sender-side completion-latency anchor
  };

  struct Peer {
    PeerId id = 0;              ///< owning peer (slots are not id-indexed)
    std::vector<Convo> convos;  ///< tiny; linear scan by content id
  };

  /// Per-content completion-announcement state (receiver side of a file
  /// transfer), indexed like the store.
  struct Announce {
    bool queued = false;
    PeerId peer = 0;
    std::uint32_t count = 0;
    Instant deadline = 0;
  };

  Peer& peer_state(PeerId peer);
  Peer* find_peer(PeerId peer);
  const Peer* find_peer(PeerId peer) const;
  /// Open-addressed index plumbing: peers live in `peers_` in
  /// first-contact order; `slot_of_` maps a hashed PeerId to its slot.
  std::uint32_t find_slot(PeerId peer) const;
  void index_insert(PeerId peer, std::uint32_t slot);
  void index_erase(PeerId peer);
  void index_rebind(PeerId peer, std::uint32_t from, std::uint32_t to);
  void rehash_index(std::size_t buckets);
  void remove_peer_slot(std::uint32_t slot);
  Convo& convo(PeerId peer, ContentId content);
  Convo* find_convo(PeerId peer, ContentId content);
  const Convo* find_convo(PeerId peer, ContentId content) const;
  /// Closes an outgoing conversation and releases the pending packet's
  /// arena lease — per-(peer, content) slots must not pin payload storage
  /// between transfers (N peers × N endpoints would otherwise retain
  /// O(N²) buffers in the simulator).
  static void close_outbound(Outbound& out);
  void begin_offer(PeerId peer, ContentId content, bool generationed,
                   std::uint32_t generation, const CodedPacket& packet);
  void queue_advertise(PeerId peer, ContentId content, const Outbound& out);
  void queue_data(PeerId peer, ContentId content, const Outbound& out);
  void queue_data_direct(PeerId peer, ContentId content, bool generationed,
                         std::uint32_t generation, const CodedPacket& packet);
  void queue_feedback(PeerId peer, ContentId content, wire::MessageType type,
                      std::uint64_t token);
  void queue_cc(PeerId peer, ContentId content,
                const std::vector<std::uint32_t>& leaders);
  /// Reserves the next transmit-ring slot (growing the ring cold-path
  /// only) and returns its frame for the caller to fill.
  wire::Frame& push_slot(PeerId peer);
  std::uint64_t next_feedback_token();
  void maybe_announce_completion(std::size_t content_index,
                                 store::Content& content, PeerId data_peer);

  Event on_advertise(PeerId peer, std::span<const std::uint8_t> bytes);
  Event on_data(PeerId peer, std::span<const std::uint8_t> bytes);
  Event on_generation_data(PeerId peer, std::span<const std::uint8_t> bytes);
  Event deliver_data(PeerId peer, std::size_t content_index,
                     store::Content& content, std::uint32_t generation);
  Event on_feedback(PeerId peer, ContentId content, wire::MessageType type,
                    std::uint64_t token);
  Event on_cc(PeerId peer, std::span<const std::uint8_t> bytes);
  bool recently_expired(ContentId content) const;
  void note_expired(ContentId content);

  EndpointConfig cfg_;
  std::unique_ptr<store::ContentStore> store_;
  store::SwarmScheduler scheduler_;
  SessionStats stats_;

  // Per-peer state, sparse by construction: slots hold only peers this
  // endpoint has actually conversed with, in first-contact order, found
  // through an open-addressed hash over the PeerId space. A fleet node
  // that addresses the source as peer id = num_nodes therefore costs one
  // slot, not a num_nodes-long dense table — the difference between
  // O(contacts) and O(n²) memory across a million-node simulation.
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  std::vector<Peer> peers_;              ///< dense, first-contact order
  std::vector<std::uint32_t> slot_of_;   ///< open-addressed PeerId index
  std::size_t index_mask_ = 0;           ///< slot_of_.size() - 1 (pow 2)
  std::vector<Announce> announces_;      ///< parallel to store contents
  std::vector<std::uint8_t> eligible_;   ///< next_push scratch

  // Ring of recently expired content ids (see expire_content). Bounded
  // by cfg_.expired_ring, so a long stream never grows it past that; the
  // scan only runs on the cold unknown-content path.
  std::vector<ContentId> expired_ring_;
  std::size_t expired_next_ = 0;

  // Transmit queue: a recycling ring of (destination, frame) slots, the
  // SimChannel discipline — capacity circulates via poll_transmit's swap
  // instead of every slot growing its own buffer.
  struct TxSlot {
    PeerId peer = 0;
    wire::Frame frame;
  };
  std::vector<TxSlot> tx_ring_;
  std::size_t tx_head_ = 0;
  std::size_t tx_size_ = 0;

  Instant now_ = 0;
  double pace_tokens_ = 0.0;
  // Observer-only instruments (may stay null forever). first_delivery_
  // is parallel to the store: the tick a content's first payload landed,
  // the anchor for its completion-latency sample (recorded once).
  const telemetry::SessionInstruments* telemetry_ = nullptr;
  std::vector<Instant> first_delivery_;
  std::vector<std::uint8_t> completion_recorded_;
  std::uint64_t conversation_counter_ = 0;  ///< default feedback tokens
  std::optional<std::uint64_t> pending_token_;  ///< set_feedback_token
  bool peer_completed_ = false;
  std::uint64_t completion_token_ = 0;

  // Decode scratch, reused across frames (no steady-state leases).
  CodedPacket rx_packet_;
  BitVector rx_coeffs_;
  wire::AdvertiseInfo rx_adv_{};
  std::vector<std::uint32_t> rx_cc_;
};

}  // namespace ltnc::session
