#include "session/endpoint.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "wire/codec.hpp"

namespace ltnc::session {

namespace {

#if LTNC_TELEMETRY_ENABLED
// Call sites live inside LTNC_TELEMETRY(), so these helpers (and all
// instrument state) vanish from the hot paths in a telemetry-off build.
constexpr Instant kNeverDelivered = ~Instant{0};

void trace_event(const telemetry::SessionInstruments* t,
                 telemetry::TracePoint point, Instant now,
                 std::uint64_t detail) {
  if (t != nullptr && t->recorder != nullptr) {
    t->recorder->record(point, now, t->actor, detail);
  }
}
#endif

std::unique_ptr<store::ContentStore> single_content_store(
    const EndpointConfig& config, std::unique_ptr<NodeProtocol> protocol) {
  LTNC_CHECK_MSG(config.k > 0, "endpoint needs content dimensions");
  LTNC_CHECK_MSG(config.payload_bytes > 0, "endpoint needs a payload size");
  auto contents = std::make_unique<store::ContentStore>();
  store::ContentConfig cc;
  cc.id = 0;
  cc.k = config.k;
  cc.payload_bytes = config.payload_bytes;
  contents->register_content(cc, std::move(protocol));
  return contents;
}

}  // namespace

Endpoint::Endpoint(const EndpointConfig& config,
                   std::unique_ptr<NodeProtocol> protocol)
    : Endpoint(config, single_content_store(config, std::move(protocol))) {}

Endpoint::Endpoint(const EndpointConfig& config,
                   std::unique_ptr<store::ContentStore> contents)
    : cfg_(config),
      store_(std::move(contents)),
      pace_tokens_(config.pace_burst) {
  LTNC_CHECK_MSG(store_ != nullptr, "endpoint needs a content store");
}

NodeProtocol* Endpoint::protocol() {
  store::Content* c = store_->find(0);
  return c == nullptr ? nullptr : c->protocol();
}

const NodeProtocol* Endpoint::protocol() const {
  return const_cast<Endpoint*>(this)->protocol();
}

bool Endpoint::can_push() const {
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (store_->at(i).can_emit()) return true;
  }
  return false;
}

// --- sparse peer table -----------------------------------------------------
//
// Linear-probed power-of-two hash (SplitMix64 finalizer — PeerIds are
// often sequential, so the raw id is a terrible bucket key) mapping a
// PeerId to its slot in the dense first-contact-order `peers_` vector.
// Deletion uses backward-shift so probe chains never accumulate
// tombstones across a long reclaim-heavy run.

namespace {

std::size_t hash_peer(PeerId peer) {
  std::uint64_t x = static_cast<std::uint64_t>(peer) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

}  // namespace

std::uint32_t Endpoint::find_slot(PeerId peer) const {
  if (slot_of_.empty()) return kNoSlot;
  std::size_t i = hash_peer(peer) & index_mask_;
  while (slot_of_[i] != kNoSlot) {
    if (peers_[slot_of_[i]].id == peer) return slot_of_[i];
    i = (i + 1) & index_mask_;
  }
  return kNoSlot;
}

Endpoint::Peer* Endpoint::find_peer(PeerId peer) {
  const std::uint32_t slot = find_slot(peer);
  return slot == kNoSlot ? nullptr : &peers_[slot];
}

const Endpoint::Peer* Endpoint::find_peer(PeerId peer) const {
  const std::uint32_t slot = find_slot(peer);
  return slot == kNoSlot ? nullptr : &peers_[slot];
}

void Endpoint::index_insert(PeerId peer, std::uint32_t slot) {
  std::size_t i = hash_peer(peer) & index_mask_;
  while (slot_of_[i] != kNoSlot) i = (i + 1) & index_mask_;
  slot_of_[i] = slot;
}

void Endpoint::index_erase(PeerId peer) {
  std::size_t i = hash_peer(peer) & index_mask_;
  while (true) {
    if (slot_of_[i] == kNoSlot) return;  // not indexed
    if (peers_[slot_of_[i]].id == peer) break;
    i = (i + 1) & index_mask_;
  }
  // Backward shift: pull every displaced successor whose home bucket lies
  // at or before the hole, keeping all probe chains gap-free.
  std::size_t hole = i;
  std::size_t j = (hole + 1) & index_mask_;
  while (slot_of_[j] != kNoSlot) {
    const std::size_t home = hash_peer(peers_[slot_of_[j]].id) & index_mask_;
    if (((j - home) & index_mask_) >= ((j - hole) & index_mask_)) {
      slot_of_[hole] = slot_of_[j];
      hole = j;
    }
    j = (j + 1) & index_mask_;
  }
  slot_of_[hole] = kNoSlot;
}

void Endpoint::index_rebind(PeerId peer, std::uint32_t from,
                            std::uint32_t to) {
  // `peer` is indexed, and its probe chain from home is gap-free, so the
  // bucket holding `from` is always reachable.
  std::size_t i = hash_peer(peer) & index_mask_;
  while (slot_of_[i] != from) i = (i + 1) & index_mask_;
  slot_of_[i] = to;
}

void Endpoint::rehash_index(std::size_t buckets) {
  slot_of_.assign(buckets, kNoSlot);
  index_mask_ = buckets - 1;
  for (std::uint32_t slot = 0; slot < peers_.size(); ++slot) {
    index_insert(peers_[slot].id, slot);
  }
}

Endpoint::Peer& Endpoint::peer_state(PeerId peer) {
  if (Peer* p = find_peer(peer)) return *p;
  // Grow at 3/4 load so probe chains stay short.
  if (slot_of_.empty() || (peers_.size() + 1) * 4 > slot_of_.size() * 3) {
    rehash_index(std::max<std::size_t>(16, slot_of_.size() * 2));
  }
  const auto slot = static_cast<std::uint32_t>(peers_.size());
  peers_.emplace_back();
  peers_.back().id = peer;
  index_insert(peer, slot);
  return peers_.back();
}

void Endpoint::remove_peer_slot(std::uint32_t slot) {
  index_erase(peers_[slot].id);
  const auto last = static_cast<std::uint32_t>(peers_.size() - 1);
  if (slot != last) {
    // Swap-remove, then repoint the moved peer's index bucket at its new
    // slot (first-contact order is a courtesy, not a contract — nothing
    // keyed on it survives a reclaim).
    peers_[slot] = std::move(peers_[last]);
    index_rebind(peers_[slot].id, last, slot);
  }
  peers_.pop_back();
}

bool Endpoint::reclaim_idle_convo(PeerId peer, ContentId content) {
  const std::uint32_t slot = find_slot(peer);
  if (slot == kNoSlot) return false;
  Peer& p = peers_[slot];
  for (std::size_t i = 0; i < p.convos.size(); ++i) {
    Convo& cv = p.convos[i];
    if (cv.content != content) continue;
    if (cv.out.state != Outbound::State::kIdle || cv.in.awaiting_data ||
        cv.cc_fresh || cv.peer_done) {
      return false;  // live state — the slot stays
    }
    if (i + 1 != p.convos.size()) cv = std::move(p.convos.back());
    p.convos.pop_back();
    if (p.convos.empty()) remove_peer_slot(slot);
    return true;
  }
  return false;
}

bool Endpoint::expire_content(ContentId content) {
  const std::size_t index = store_->index_of(content);
  if (index >= store_->size()) return false;
  // Cancel every (peer, content) conversation. A transfer still awaiting
  // its abort/proceed is abandoned — the deadline-miss drop path — and
  // its pending payload lease goes back to the arena via close_outbound.
  for (std::uint32_t slot = 0; slot < peers_.size();) {
    Peer& p = peers_[slot];
    bool peer_removed = false;
    for (std::size_t i = 0; i < p.convos.size(); ++i) {
      Convo& cv = p.convos[i];
      if (cv.content != content) continue;
      if (cv.out.state == Outbound::State::kAwaitFeedback) {
        ++stats_.transfers_abandoned;
      }
      close_outbound(cv.out);
      if (i + 1 != p.convos.size()) cv = std::move(p.convos.back());
      p.convos.pop_back();
      if (p.convos.empty()) {
        remove_peer_slot(slot);
        peer_removed = true;
      }
      break;  // at most one convo per (peer, content)
    }
    // remove_peer_slot swap-moved a different peer into `slot`; revisit it.
    if (!peer_removed) ++slot;
  }
  // Side tables are index-parallel to the store; erase in lockstep so the
  // surviving contents keep their announce/latency state.
  if (index < announces_.size()) {
    announces_.erase(announces_.begin() + static_cast<std::ptrdiff_t>(index));
  }
  if (index < first_delivery_.size()) {
    first_delivery_.erase(first_delivery_.begin() +
                          static_cast<std::ptrdiff_t>(index));
  }
  if (index < completion_recorded_.size()) {
    completion_recorded_.erase(completion_recorded_.begin() +
                               static_cast<std::ptrdiff_t>(index));
  }
  store_->remove(content);
  note_expired(content);
  ++stats_.contents_expired;
  return true;
}

void Endpoint::note_expired(ContentId content) {
  if (cfg_.expired_ring == 0) return;  // ring disabled by config
  if (expired_ring_.size() < cfg_.expired_ring) {
    expired_ring_.push_back(content);
    expired_next_ = expired_ring_.size() % cfg_.expired_ring;
    return;
  }
  expired_ring_[expired_next_] = content;
  expired_next_ = (expired_next_ + 1) % cfg_.expired_ring;
}

bool Endpoint::recently_expired(ContentId content) const {
  for (const ContentId id : expired_ring_) {
    if (id == content) return true;
  }
  return false;
}

Endpoint::Convo& Endpoint::convo(PeerId peer, ContentId content) {
  Peer& p = peer_state(peer);
  for (Convo& cv : p.convos) {
    if (cv.content == content) return cv;
  }
  p.convos.emplace_back();
  p.convos.back().content = content;
  return p.convos.back();
}

Endpoint::Convo* Endpoint::find_convo(PeerId peer, ContentId content) {
  Peer* p = find_peer(peer);
  if (p == nullptr) return nullptr;
  for (Convo& cv : p->convos) {
    if (cv.content == content) return &cv;
  }
  return nullptr;
}

const Endpoint::Convo* Endpoint::find_convo(PeerId peer,
                                            ContentId content) const {
  return const_cast<Endpoint*>(this)->find_convo(peer, content);
}

void Endpoint::close_outbound(Outbound& out) {
  out.state = Outbound::State::kIdle;
  out.packet = CodedPacket();  // hand the limb leases back to the arena
}

// --- transmit queue --------------------------------------------------------

wire::Frame& Endpoint::push_slot(PeerId peer) {
  if (tx_size_ == tx_ring_.size()) {
    // Cold path: unroll the ring so index order matches queue order, then
    // double the slot count. Warm buffers in existing slots survive.
    std::rotate(tx_ring_.begin(),
                tx_ring_.begin() + static_cast<std::ptrdiff_t>(tx_head_),
                tx_ring_.end());
    tx_head_ = 0;
    tx_ring_.resize(std::max<std::size_t>(4, tx_ring_.size() * 2));
  }
  TxSlot& slot = tx_ring_[(tx_head_ + tx_size_) % tx_ring_.size()];
  ++tx_size_;
  slot.peer = peer;
  return slot.frame;
}

bool Endpoint::poll_transmit(PeerId& peer, wire::Frame& out) {
  if (tx_size_ == 0) return false;
  TxSlot& slot = tx_ring_[tx_head_];
  peer = slot.peer;
  // Swap rather than copy: the caller gets the queued frame, the drained
  // slot banks the caller's warmed capacity for the next queue_* call.
  std::swap(out, slot.frame);
  tx_head_ = (tx_head_ + 1) % tx_ring_.size();
  --tx_size_;
  ++stats_.frames_sent;
  stats_.bytes_sent += out.size();
  return true;
}

void Endpoint::queue_advertise(PeerId peer, ContentId content,
                               const Outbound& out) {
  wire::AdvertiseInfo info;
  info.content = content;
  info.has_generation = out.generationed;
  info.generation = out.generation;
  info.payload_bytes = out.packet.payload.size_bytes();
  wire::serialize_advertise(info, out.packet.coeffs, push_slot(peer));
}

void Endpoint::queue_data(PeerId peer, ContentId content,
                          const Outbound& out) {
  queue_data_direct(peer, content, out.generationed, out.generation,
                    out.packet);
}

void Endpoint::queue_data_direct(PeerId peer, ContentId content,
                                 bool generationed, std::uint32_t generation,
                                 const CodedPacket& packet) {
  if (generationed) {
    wire::serialize_generation(content, generation, packet, push_slot(peer));
  } else {
    wire::serialize(content, packet, push_slot(peer));
  }
}

void Endpoint::queue_feedback(PeerId peer, ContentId content,
                              wire::MessageType type, std::uint64_t token) {
  wire::serialize_feedback(content, type, token, push_slot(peer));
}

void Endpoint::queue_cc(PeerId peer, ContentId content,
                        const std::vector<std::uint32_t>& leaders) {
  wire::serialize_cc(content, leaders, push_slot(peer));
}

// --- application surface ---------------------------------------------------

bool Endpoint::start_transfer(PeerId peer, Rng& rng) {
  return start_transfer(peer, ContentId{0}, rng);
}

bool Endpoint::start_transfer(PeerId peer, ContentId content, Rng& rng) {
  store::Content* c = store_->find(content);
  if (c == nullptr) return false;
  std::optional<CodedPacket> packet;
  std::uint32_t generation = 0;
  if (!c->generationed() && c->protocol() != nullptr &&
      cfg_.feedback == FeedbackMode::kSmart) {
    Convo& cv = convo(peer, content);
    if (cv.cc_fresh) {
      cv.cc_fresh = false;  // one construction per shipped cc array
      packet = c->protocol()->emit_for(cv.cc, rng);
    } else {
      packet = c->protocol()->emit(rng);
    }
  } else {
    packet = c->emit(generation, rng);
  }
  if (!packet.has_value()) return false;
  begin_offer(peer, content, c->generationed(), generation, *packet);
  return true;
}

const store::Content* Endpoint::next_push(PeerId peer) {
  const std::size_t n = store_->size();
  if (n == 0) return nullptr;
  if (cfg_.pace_tokens_per_tick > 0.0 && pace_tokens_ < 1.0) {
    ++stats_.pacer_deferrals;
    return nullptr;
  }
  if (eligible_.size() < n) eligible_.resize(n);
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    eligible_[i] = 0;
    store::Content& c = store_->at(i);
    if (!c.can_emit()) continue;
    const Convo* cv = find_convo(peer, c.id());
    if (cv != nullptr && (cv->peer_done ||
                          cv->out.state == Outbound::State::kAwaitFeedback)) {
      continue;  // the peer is done with it, or a transfer is in flight
    }
    eligible_[i] = 1;
    any = true;
  }
  if (!any) return nullptr;
  const std::size_t pick =
      scheduler_.pick(*store_, {eligible_.data(), eligible_.size()});
  if (pick == store::SwarmScheduler::kNone) return nullptr;
  if (cfg_.pace_tokens_per_tick > 0.0) pace_tokens_ -= 1.0;
  ++stats_.swarm_pushes;
  return &store_->at(pick);
}

void Endpoint::offer_packet(PeerId peer, const CodedPacket& packet) {
  begin_offer(peer, ContentId{0}, false, 0, packet);
}

void Endpoint::offer_packet(PeerId peer, ContentId content,
                            const CodedPacket& packet) {
  begin_offer(peer, content, false, 0, packet);
}

void Endpoint::offer_packet(PeerId peer, ContentId content,
                            std::uint32_t generation,
                            const CodedPacket& packet) {
  begin_offer(peer, content, true, generation, packet);
}

void Endpoint::begin_offer(PeerId peer, ContentId content, bool generationed,
                           std::uint32_t generation,
                           const CodedPacket& packet) {
  ++stats_.offers;
  if (cfg_.feedback == FeedbackMode::kNone) {
    // No handshake: the payload goes out directly, fire and forget. The
    // conversation slot still exists (created once, cold) so the peer's
    // eventual completion kAck for this content has a home — inbound
    // feedback only ever binds to conversations we opened ourselves.
    [[maybe_unused]] Convo& direct = convo(peer, content);
    LTNC_TELEMETRY(if (!direct.ever_offered) {
      direct.ever_offered = true;
      direct.first_offer_at = now_;
    });
    queue_data_direct(peer, content, generationed, generation, packet);
    ++stats_.data_sent;
    LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kPayloadSent,
                               now_, content));
    return;
  }
  Convo& cv = convo(peer, content);
  LTNC_TELEMETRY(if (!cv.ever_offered) {
    cv.ever_offered = true;
    cv.first_offer_at = now_;
  });
  if (cv.out.state == Outbound::State::kAwaitFeedback) {
    ++stats_.transfers_abandoned;  // superseded by the fresher offer
  }
  cv.out.packet = packet;
  cv.out.generationed = generationed;
  cv.out.generation = generation;
  cv.out.state = Outbound::State::kAwaitFeedback;
  cv.out.retries = 0;
  cv.out.deadline = now_ + cfg_.response_timeout;
  cv.out.offered_at = now_;
  queue_advertise(peer, content, cv.out);
  ++stats_.advertises_sent;
  LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kAdvertiseSent,
                             now_, content));
}

bool Endpoint::announce_cc(PeerId peer) {
  return announce_cc(peer, ContentId{0});
}

bool Endpoint::announce_cc(PeerId peer, ContentId content) {
  store::Content* c = store_->find(content);
  if (c == nullptr || c->protocol() == nullptr) return false;
  const std::vector<std::uint32_t>* leaders =
      c->protocol()->component_leaders();
  if (leaders == nullptr) return false;
  queue_cc(peer, content, *leaders);
  ++stats_.cc_sent;
  return true;
}

bool Endpoint::overhear(const CodedPacket& packet) {
  return overhear(ContentId{0}, packet);
}

bool Endpoint::overhear(ContentId content, const CodedPacket& packet) {
  store::Content* c = store_->find(content);
  if (c == nullptr || c->generationed() || c->protocol() == nullptr ||
      c->would_reject(0, packet.coeffs)) {
    return false;
  }
  c->deliver(0, packet);
  ++stats_.overheard;
  return true;
}

bool Endpoint::awaiting_feedback(PeerId peer, ContentId content) const {
  const Convo* cv = find_convo(peer, content);
  return cv != nullptr && cv->out.state == Outbound::State::kAwaitFeedback;
}

bool Endpoint::peer_completed(PeerId peer, ContentId content) const {
  const Convo* cv = find_convo(peer, content);
  return cv != nullptr && cv->peer_done;
}

bool Endpoint::peer_completed_all(PeerId peer) const {
  if (store_->size() == 0) return false;
  for (std::size_t i = 0; i < store_->size(); ++i) {
    if (!peer_completed(peer, store_->at(i).id())) return false;
  }
  return true;
}

void Endpoint::set_feedback_token(std::uint64_t token) {
  pending_token_ = token;
}

std::uint64_t Endpoint::next_feedback_token() {
  if (pending_token_.has_value()) {
    const std::uint64_t token = *pending_token_;
    pending_token_.reset();
    return token;
  }
  return conversation_counter_++;
}

// --- frame intake ----------------------------------------------------------

Endpoint::Event Endpoint::handle_frame(PeerId peer,
                                       std::span<const std::uint8_t> bytes) {
  ++stats_.frames_received;
  stats_.bytes_received += bytes.size();
  wire::MessageType type{};
  if (wire::peek_type(bytes, type) != wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  switch (type) {
    case wire::MessageType::kAdvertise:
      return on_advertise(peer, bytes);
    case wire::MessageType::kCodedPacket:
      return on_data(peer, bytes);
    case wire::MessageType::kGenerationPacket:
      return on_generation_data(peer, bytes);
    case wire::MessageType::kAbort:
    case wire::MessageType::kAck:
    case wire::MessageType::kProceed: {
      std::uint64_t token = 0;
      ContentId content = 0;
      if (wire::deserialize_feedback(bytes, type, token, content) !=
          wire::DecodeStatus::kOk) {
        ++stats_.malformed_frames;
        return Event::kMalformed;
      }
      return on_feedback(peer, content, type, token);
    }
    case wire::MessageType::kCcArray:
      return on_cc(peer, bytes);
  }
  ++stats_.foreign_frames;
  return Event::kNone;
}

Endpoint::Event Endpoint::on_advertise(PeerId peer,
                                       std::span<const std::uint8_t> bytes) {
  if (wire::deserialize_advertise(bytes, rx_coeffs_, rx_adv_) !=
      wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  store::Content* c = store_->find(rx_adv_.content);
  if (c == nullptr || rx_coeffs_.size() != c->k() ||
      rx_adv_.payload_bytes != c->payload_bytes() ||
      rx_adv_.has_generation != c->generationed() ||
      (rx_adv_.has_generation && rx_adv_.generation >= c->generations())) {
    if (c == nullptr && recently_expired(rx_adv_.content)) {
      ++stats_.expired_frames;  // late offer for a block past its window
      return Event::kExpired;
    }
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  ++stats_.advertises_received;
  LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kAdvertiseRecv,
                             now_, rx_adv_.content));
  Convo& cv = convo(peer, rx_adv_.content);
  if (cv.in.awaiting_data && cv.in.generation == rx_adv_.generation &&
      cv.in.coeffs == rx_coeffs_) {
    // Replay of an advertise we already answered (our proceed was lost,
    // or the frame was duplicated in flight). Note it, then fall through
    // to a full re-evaluation: the vector may have turned redundant since
    // the first answer, and the veto must always reflect current state —
    // the conversation is simply re-armed, never opened twice.
    ++stats_.duplicates_suppressed;
  }
  // A receiver-less content (pure seeder) can never consume a payload:
  // vetoing up front beats inviting a data frame it would drop as
  // foreign.
  const bool reject = cfg_.feedback != FeedbackMode::kNone &&
                      c->would_reject(rx_adv_.generation, rx_coeffs_);
  const std::uint64_t token = next_feedback_token();
  if (reject) {
    cv.in.awaiting_data = false;  // any stale conversation dies with the veto
    queue_feedback(peer, rx_adv_.content, wire::MessageType::kAbort, token);
    ++stats_.aborts_sent;
    LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kAbortSent,
                               now_, rx_adv_.content));
    return Event::kAborted;
  }
  // A fresh advertise supersedes whatever this (peer, content) had in
  // flight.
  cv.in.coeffs = rx_coeffs_;
  cv.in.generation = rx_adv_.generation;
  cv.in.awaiting_data = true;
  cv.in.deadline = now_ + cfg_.response_timeout;
  queue_feedback(peer, rx_adv_.content, wire::MessageType::kProceed, token);
  ++stats_.proceeds_sent;
  LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kProceedSent,
                             now_, rx_adv_.content));
  return Event::kProceeding;
}

Endpoint::Event Endpoint::on_data(PeerId peer,
                                  std::span<const std::uint8_t> bytes) {
  ContentId content = 0;
  if (wire::deserialize(bytes, content, rx_packet_) !=
      wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  const std::size_t index = store_->index_of(content);
  store::Content* c = index < store_->size() ? &store_->at(index) : nullptr;
  if (c == nullptr || c->generationed() || c->protocol() == nullptr ||
      rx_packet_.coeffs.size() != c->k() ||
      rx_packet_.payload.size_bytes() != c->payload_bytes()) {
    if (c == nullptr && recently_expired(content)) {
      ++stats_.expired_frames;  // late payload for a block past its window
      return Event::kExpired;
    }
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  return deliver_data(peer, index, *c, 0);
}

Endpoint::Event Endpoint::on_generation_data(
    PeerId peer, std::span<const std::uint8_t> bytes) {
  ContentId content = 0;
  std::uint32_t generation = 0;
  if (wire::deserialize_generation(bytes, content, generation, rx_packet_) !=
      wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  const std::size_t index = store_->index_of(content);
  store::Content* c = index < store_->size() ? &store_->at(index) : nullptr;
  if (c == nullptr || !c->generationed() ||
      generation >= c->generations() ||
      rx_packet_.coeffs.size() != c->k() ||
      rx_packet_.payload.size_bytes() != c->payload_bytes()) {
    if (c == nullptr && recently_expired(content)) {
      ++stats_.expired_frames;  // late payload for a block past its window
      return Event::kExpired;
    }
    ++stats_.foreign_frames;  // genuinely unknown content id or shape
    return Event::kNone;
  }
  return deliver_data(peer, index, *c, generation);
}

Endpoint::Event Endpoint::deliver_data(PeerId peer,
                                       std::size_t content_index,
                                       store::Content& content,
                                       std::uint32_t generation) {
  Convo& cv = convo(peer, content.id());
  if (cv.in.awaiting_data && cv.in.generation == generation &&
      cv.in.coeffs == rx_packet_.coeffs) {
    cv.in.awaiting_data = false;  // the conversation closes on delivery
  } else if (cfg_.feedback != FeedbackMode::kNone) {
    // Data with no matching advertise: a reordered or replayed frame.
    // Deliver anyway — the protocol's own redundancy detection is the
    // authority on usefulness, and rateless payloads are always safe.
    ++stats_.unsolicited_data;
  }
  content.deliver(generation, rx_packet_);
  ++stats_.data_delivered;
  LTNC_TELEMETRY(
      trace_event(telemetry_, telemetry::TracePoint::kPayloadDelivered, now_,
                  content.id());
      if (telemetry_ != nullptr && telemetry_->completion_ticks != nullptr) {
        // First payload anchors the content's completion-latency sample;
        // the sample is recorded exactly once, at the completing delivery.
        if (first_delivery_.size() < store_->size()) {
          first_delivery_.resize(store_->size(), kNeverDelivered);
          completion_recorded_.resize(store_->size(), 0);
        }
        if (first_delivery_[content_index] == kNeverDelivered) {
          first_delivery_[content_index] = now_;
        }
        if (completion_recorded_[content_index] == 0 && content.complete()) {
          completion_recorded_[content_index] = 1;
          telemetry_->completion_ticks->record(
              now_ - first_delivery_[content_index]);
          trace_event(telemetry_, telemetry::TracePoint::kComplete, now_,
                      content.id());
        }
      });
  maybe_announce_completion(content_index, content, peer);
  return Event::kDelivered;
}

Endpoint::Event Endpoint::on_feedback(PeerId peer, ContentId content,
                                      wire::MessageType type,
                                      std::uint64_t token) {
  // Feedback binds only to conversations this endpoint opened (every
  // offer creates the slot). Never allocate convo state off an inbound
  // content id: a stray or forged frame sweeping the 2^64 id space must
  // not grow per-peer memory — the open-port hardening rule.
  Convo* cv = find_convo(peer, content);
  if (cv == nullptr) {
    if (recently_expired(content)) {
      // Feedback for a conversation expire_content tore down: the
      // answer raced the expiry, exactly one counter takes it.
      ++stats_.expired_frames;
      return Event::kExpired;
    }
    if (type == wire::MessageType::kAck) {
      ++stats_.completions_received;
      ++stats_.foreign_frames;  // ack for a conversation we never had
    } else {
      ++stats_.duplicates_suppressed;  // stale answer to a closed transfer
    }
    return Event::kNone;
  }
  switch (type) {
    case wire::MessageType::kAbort:
      if (cv->out.state != Outbound::State::kAwaitFeedback) {
        ++stats_.duplicates_suppressed;  // stale veto of a closed transfer
        return Event::kNone;
      }
      LTNC_TELEMETRY(
          if (telemetry_ != nullptr && telemetry_->handshake_ticks != nullptr) {
            telemetry_->handshake_ticks->record(now_ - cv->out.offered_at);
          } trace_event(telemetry_, telemetry::TracePoint::kAbortRecv, now_,
                        content));
      close_outbound(cv->out);
      ++stats_.aborts_received;
      return Event::kAbortReceived;
    case wire::MessageType::kProceed:
      if (cv->out.state != Outbound::State::kAwaitFeedback) {
        ++stats_.duplicates_suppressed;  // duplicate go-ahead: data already
        return Event::kNone;             // went out exactly once
      }
      ++stats_.proceeds_received;
      LTNC_TELEMETRY(
          if (telemetry_ != nullptr && telemetry_->handshake_ticks != nullptr) {
            telemetry_->handshake_ticks->record(now_ - cv->out.offered_at);
          } trace_event(telemetry_, telemetry::TracePoint::kProceedRecv, now_,
                        content);
          trace_event(telemetry_, telemetry::TracePoint::kPayloadSent, now_,
                      content));
      queue_data(peer, content, cv->out);
      ++stats_.data_sent;
      close_outbound(cv->out);
      return Event::kProceedReceived;
    case wire::MessageType::kAck:
      ++stats_.completions_received;
      if (cv->peer_done) {
        ++stats_.duplicates_suppressed;
        return Event::kNone;
      }
      LTNC_TELEMETRY(
          trace_event(telemetry_, telemetry::TracePoint::kAckRecv, now_,
                      content);
          // Sender-side completion latency: first offer to this peer →
          // its completion ack (the receiver-side twin is recorded in
          // deliver_data when the local decode finishes).
          if (telemetry_ != nullptr && telemetry_->completion_ticks != nullptr &&
              cv->ever_offered) {
            telemetry_->completion_ticks->record(now_ - cv->first_offer_at);
          });
      cv->peer_done = true;
      if (!peer_completed_) {
        peer_completed_ = true;
        completion_token_ = token;
      }
      return Event::kAckReceived;
    default:
      break;
  }
  ++stats_.foreign_frames;
  return Event::kNone;
}

Endpoint::Event Endpoint::on_cc(PeerId peer,
                                std::span<const std::uint8_t> bytes) {
  ContentId content = 0;
  if (wire::deserialize_cc(bytes, content, rx_cc_) !=
      wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  // Validate the content before touching convo state — an unknown or
  // mismatched cc must not allocate a (peer, content) slot (see
  // on_feedback). A stale fresh-flag for the slot, if any, dies too.
  const store::Content* c = store_->find(content);
  if (c == nullptr || c->generationed() || rx_cc_.size() != c->k()) {
    if (Convo* cv = find_convo(peer, content)) cv->cc_fresh = false;
    if (c == nullptr && recently_expired(content)) {
      ++stats_.expired_frames;
      return Event::kExpired;
    }
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  Convo& cv = convo(peer, content);
  std::swap(cv.cc, rx_cc_);  // banks the old buffer as the next scratch
  cv.cc_fresh = true;
  ++stats_.cc_received;
  return Event::kCcReceived;
}

// --- timers ----------------------------------------------------------------

void Endpoint::maybe_announce_completion(std::size_t content_index,
                                         store::Content& content,
                                         PeerId data_peer) {
  if (!cfg_.announce_completion) return;
  if (announces_.size() < store_->size()) announces_.resize(store_->size());
  Announce& a = announces_[content_index];
  if (a.queued || !content.complete()) return;
  a.queued = true;
  a.peer = data_peer;
  a.count = 1;
  a.deadline = now_ + cfg_.response_timeout;
  queue_feedback(a.peer, content.id(), wire::MessageType::kAck,
                 stats_.data_delivered);
  ++stats_.completions_sent;
  LTNC_TELEMETRY(trace_event(telemetry_, telemetry::TracePoint::kAckSent,
                             now_, content.id()));
}

void Endpoint::tick(Instant now) {
  if (cfg_.pace_tokens_per_tick > 0.0 && now > now_) {
    pace_tokens_ = std::min(
        cfg_.pace_burst,
        pace_tokens_ + cfg_.pace_tokens_per_tick *
                           static_cast<double>(now - now_));
  }
  now_ = now;
  for (Peer& p : peers_) {
    for (Convo& cv : p.convos) {
      if (cv.out.state == Outbound::State::kAwaitFeedback &&
          now >= cv.out.deadline) {
        if (cv.out.retries < cfg_.max_retries) {
          ++cv.out.retries;
          cv.out.deadline = now + cfg_.response_timeout;
          queue_advertise(p.id, cv.content, cv.out);
          ++stats_.advertise_retransmits;
          LTNC_TELEMETRY(trace_event(telemetry_,
                                     telemetry::TracePoint::kRetransmit, now,
                                     cv.content));
        } else {
          close_outbound(cv.out);
          ++stats_.transfers_abandoned;
        }
      }
      if (cv.in.awaiting_data && now >= cv.in.deadline) {
        cv.in.awaiting_data = false;  // the payload never came
        ++stats_.timeouts;
      }
    }
  }
  for (std::size_t i = 0; i < announces_.size(); ++i) {
    Announce& a = announces_[i];
    if (a.queued && a.count <= cfg_.max_retries && now >= a.deadline) {
      ++a.count;
      a.deadline = now + cfg_.response_timeout;
      queue_feedback(a.peer, store_->at(i).id(), wire::MessageType::kAck,
                     stats_.data_delivered);
      ++stats_.completions_sent;
    }
  }
}

}  // namespace ltnc::session
