#include "session/endpoint.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "wire/codec.hpp"

namespace ltnc::session {

Endpoint::Endpoint(const EndpointConfig& config,
                   std::unique_ptr<NodeProtocol> protocol)
    : cfg_(config), protocol_(std::move(protocol)) {
  LTNC_CHECK_MSG(cfg_.k > 0, "endpoint needs content dimensions");
  LTNC_CHECK_MSG(cfg_.payload_bytes > 0, "endpoint needs a payload size");
}

Endpoint::Peer& Endpoint::peer_state(PeerId peer) {
  if (peer >= peers_.size()) peers_.resize(static_cast<std::size_t>(peer) + 1);
  return peers_[peer];
}

void Endpoint::close_outbound(Outbound& out) {
  out.state = Outbound::State::kIdle;
  out.packet = CodedPacket();  // hand the limb leases back to the arena
}

// --- transmit queue --------------------------------------------------------

wire::Frame& Endpoint::push_slot(PeerId peer) {
  if (tx_size_ == tx_ring_.size()) {
    // Cold path: unroll the ring so index order matches queue order, then
    // double the slot count. Warm buffers in existing slots survive.
    std::rotate(tx_ring_.begin(),
                tx_ring_.begin() + static_cast<std::ptrdiff_t>(tx_head_),
                tx_ring_.end());
    tx_head_ = 0;
    tx_ring_.resize(std::max<std::size_t>(4, tx_ring_.size() * 2));
  }
  TxSlot& slot = tx_ring_[(tx_head_ + tx_size_) % tx_ring_.size()];
  ++tx_size_;
  slot.peer = peer;
  return slot.frame;
}

bool Endpoint::poll_transmit(PeerId& peer, wire::Frame& out) {
  if (tx_size_ == 0) return false;
  TxSlot& slot = tx_ring_[tx_head_];
  peer = slot.peer;
  // Swap rather than copy: the caller gets the queued frame, the drained
  // slot banks the caller's warmed capacity for the next queue_* call.
  std::swap(out, slot.frame);
  tx_head_ = (tx_head_ + 1) % tx_ring_.size();
  --tx_size_;
  ++stats_.frames_sent;
  stats_.bytes_sent += out.size();
  return true;
}

void Endpoint::queue_advertise(PeerId peer, const Outbound& out) {
  wire::serialize_advertise(out.packet.coeffs, out.packet.payload.size_bytes(),
                            push_slot(peer));
}

void Endpoint::queue_data(PeerId peer, const CodedPacket& packet) {
  wire::serialize(packet, push_slot(peer));
}

void Endpoint::queue_feedback(PeerId peer, wire::MessageType type,
                              std::uint64_t token) {
  wire::serialize_feedback(type, token, push_slot(peer));
}

void Endpoint::queue_cc(PeerId peer,
                        const std::vector<std::uint32_t>& leaders) {
  wire::serialize_cc(leaders, push_slot(peer));
}

// --- application surface ---------------------------------------------------

bool Endpoint::start_transfer(PeerId peer, Rng& rng) {
  if (protocol_ == nullptr) return false;
  Peer& p = peer_state(peer);
  std::optional<CodedPacket> packet;
  if (cfg_.feedback == FeedbackMode::kSmart && p.cc_fresh) {
    p.cc_fresh = false;  // one construction per shipped cc array
    packet = protocol_->emit_for(p.cc, rng);
  } else {
    packet = protocol_->emit(rng);
  }
  if (!packet.has_value()) return false;
  begin_offer(peer, *packet);
  return true;
}

void Endpoint::offer_packet(PeerId peer, const CodedPacket& packet) {
  begin_offer(peer, packet);
}

void Endpoint::begin_offer(PeerId peer, const CodedPacket& packet) {
  ++stats_.offers;
  if (cfg_.feedback == FeedbackMode::kNone) {
    // No handshake: the payload goes out directly, fire and forget.
    queue_data(peer, packet);
    ++stats_.data_sent;
    return;
  }
  Peer& p = peer_state(peer);
  if (p.out.state == Outbound::State::kAwaitFeedback) {
    ++stats_.transfers_abandoned;  // superseded by the fresher offer
  }
  p.out.packet = packet;
  p.out.state = Outbound::State::kAwaitFeedback;
  p.out.retries = 0;
  p.out.deadline = now_ + cfg_.response_timeout;
  queue_advertise(peer, p.out);
  ++stats_.advertises_sent;
}

bool Endpoint::announce_cc(PeerId peer) {
  if (protocol_ == nullptr) return false;
  const std::vector<std::uint32_t>* leaders = protocol_->component_leaders();
  if (leaders == nullptr) return false;
  queue_cc(peer, *leaders);
  ++stats_.cc_sent;
  return true;
}

bool Endpoint::overhear(const CodedPacket& packet) {
  if (protocol_ == nullptr || protocol_->would_reject(packet.coeffs)) {
    return false;
  }
  protocol_->deliver(packet);
  ++stats_.overheard;
  return true;
}

void Endpoint::set_feedback_token(std::uint64_t token) {
  pending_token_ = token;
}

std::uint64_t Endpoint::next_feedback_token() {
  if (pending_token_.has_value()) {
    const std::uint64_t token = *pending_token_;
    pending_token_.reset();
    return token;
  }
  return conversation_counter_++;
}

// --- frame intake ----------------------------------------------------------

Endpoint::Event Endpoint::handle_frame(PeerId peer,
                                       std::span<const std::uint8_t> bytes) {
  ++stats_.frames_received;
  stats_.bytes_received += bytes.size();
  wire::MessageType type{};
  if (wire::peek_type(bytes, type) != wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  switch (type) {
    case wire::MessageType::kAdvertise:
      return on_advertise(peer, bytes);
    case wire::MessageType::kCodedPacket:
      return on_data(peer, bytes);
    case wire::MessageType::kAbort:
    case wire::MessageType::kAck:
    case wire::MessageType::kProceed: {
      std::uint64_t token = 0;
      if (wire::deserialize_feedback(bytes, type, token) !=
          wire::DecodeStatus::kOk) {
        ++stats_.malformed_frames;
        return Event::kMalformed;
      }
      return on_feedback(peer, type, token);
    }
    case wire::MessageType::kCcArray:
      return on_cc(peer, bytes);
    case wire::MessageType::kGenerationPacket:
      break;  // sessions are single-content (ROADMAP: multi-content)
  }
  ++stats_.foreign_frames;
  return Event::kNone;
}

Endpoint::Event Endpoint::on_advertise(PeerId peer,
                                       std::span<const std::uint8_t> bytes) {
  if (wire::deserialize_advertise(bytes, rx_coeffs_, rx_payload_bytes_) !=
      wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  if (rx_coeffs_.size() != cfg_.k || rx_payload_bytes_ != cfg_.payload_bytes) {
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  ++stats_.advertises_received;
  Peer& p = peer_state(peer);
  if (p.in.awaiting_data && p.in.coeffs == rx_coeffs_) {
    // Replay of an advertise we already answered (our proceed was lost,
    // or the frame was duplicated in flight). Note it, then fall through
    // to a full re-evaluation: the vector may have turned redundant since
    // the first answer, and the veto must always reflect current state —
    // the conversation is simply re-armed, never opened twice.
    ++stats_.duplicates_suppressed;
  }
  // A protocol-less endpoint (pure seeder) can never consume a payload:
  // vetoing up front beats inviting a data frame it would drop as
  // foreign.
  const bool reject = cfg_.feedback != FeedbackMode::kNone &&
                      (protocol_ == nullptr ||
                       protocol_->would_reject(rx_coeffs_));
  const std::uint64_t token = next_feedback_token();
  if (reject) {
    p.in.awaiting_data = false;  // any stale conversation dies with the veto
    queue_feedback(peer, wire::MessageType::kAbort, token);
    ++stats_.aborts_sent;
    return Event::kAborted;
  }
  // A fresh advertise supersedes whatever this peer had in flight.
  p.in.coeffs = rx_coeffs_;
  p.in.awaiting_data = true;
  p.in.deadline = now_ + cfg_.response_timeout;
  queue_feedback(peer, wire::MessageType::kProceed, token);
  ++stats_.proceeds_sent;
  return Event::kProceeding;
}

Endpoint::Event Endpoint::on_data(PeerId peer,
                                  std::span<const std::uint8_t> bytes) {
  if (wire::deserialize(bytes, rx_packet_) != wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  if (rx_packet_.coeffs.size() != cfg_.k ||
      rx_packet_.payload.size_bytes() != cfg_.payload_bytes ||
      protocol_ == nullptr) {
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  Peer& p = peer_state(peer);
  if (p.in.awaiting_data && p.in.coeffs == rx_packet_.coeffs) {
    p.in.awaiting_data = false;  // the conversation closes on delivery
  } else if (cfg_.feedback != FeedbackMode::kNone) {
    // Data with no matching advertise: a reordered or replayed frame.
    // Deliver anyway — the protocol's own redundancy detection is the
    // authority on usefulness, and rateless payloads are always safe.
    ++stats_.unsolicited_data;
  }
  protocol_->deliver(rx_packet_);
  ++stats_.data_delivered;
  maybe_announce_completion(peer);
  return Event::kDelivered;
}

Endpoint::Event Endpoint::on_feedback(PeerId peer, wire::MessageType type,
                                      std::uint64_t token) {
  Peer& p = peer_state(peer);
  switch (type) {
    case wire::MessageType::kAbort:
      if (p.out.state != Outbound::State::kAwaitFeedback) {
        ++stats_.duplicates_suppressed;  // stale veto of a closed transfer
        return Event::kNone;
      }
      close_outbound(p.out);
      ++stats_.aborts_received;
      return Event::kAbortReceived;
    case wire::MessageType::kProceed:
      if (p.out.state != Outbound::State::kAwaitFeedback) {
        ++stats_.duplicates_suppressed;  // duplicate go-ahead: data already
        return Event::kNone;             // went out exactly once
      }
      ++stats_.proceeds_received;
      queue_data(peer, p.out.packet);
      ++stats_.data_sent;
      close_outbound(p.out);
      return Event::kProceedReceived;
    case wire::MessageType::kAck:
      ++stats_.completions_received;
      if (peer_completed_) {
        ++stats_.duplicates_suppressed;
        return Event::kNone;
      }
      peer_completed_ = true;
      completion_token_ = token;
      return Event::kAckReceived;
    default:
      break;
  }
  ++stats_.foreign_frames;
  return Event::kNone;
}

Endpoint::Event Endpoint::on_cc(PeerId peer,
                                std::span<const std::uint8_t> bytes) {
  Peer& p = peer_state(peer);
  if (wire::deserialize_cc(bytes, p.cc) != wire::DecodeStatus::kOk) {
    ++stats_.malformed_frames;
    return Event::kMalformed;
  }
  if (p.cc.size() != cfg_.k) {
    p.cc_fresh = false;
    ++stats_.foreign_frames;
    return Event::kNone;
  }
  p.cc_fresh = true;
  ++stats_.cc_received;
  return Event::kCcReceived;
}

// --- timers ----------------------------------------------------------------

void Endpoint::maybe_announce_completion(PeerId data_peer) {
  if (!cfg_.announce_completion || completion_queued_ || !complete()) return;
  completion_queued_ = true;
  completion_peer_ = data_peer;
  completion_announcements_ = 1;
  completion_deadline_ = now_ + cfg_.response_timeout;
  queue_feedback(completion_peer_, wire::MessageType::kAck,
                 stats_.data_delivered);
  ++stats_.completions_sent;
}

void Endpoint::tick(Instant now) {
  now_ = now;
  for (PeerId peer = 0; peer < peers_.size(); ++peer) {
    Peer& p = peers_[peer];
    if (p.out.state == Outbound::State::kAwaitFeedback &&
        now >= p.out.deadline) {
      if (p.out.retries < cfg_.max_retries) {
        ++p.out.retries;
        p.out.deadline = now + cfg_.response_timeout;
        queue_advertise(peer, p.out);
        ++stats_.advertise_retransmits;
      } else {
        close_outbound(p.out);
        ++stats_.transfers_abandoned;
      }
    }
    if (p.in.awaiting_data && now >= p.in.deadline) {
      p.in.awaiting_data = false;  // the payload never came
      ++stats_.timeouts;
    }
  }
  if (completion_queued_ && completion_announcements_ <= cfg_.max_retries &&
      now >= completion_deadline_) {
    ++completion_announcements_;
    completion_deadline_ = now + cfg_.response_timeout;
    queue_feedback(completion_peer_, wire::MessageType::kAck,
                   stats_.data_delivered);
    ++stats_.completions_sent;
  }
}

}  // namespace ltnc::session
