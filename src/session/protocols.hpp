// Per-node protocol adapters for the three schemes under evaluation
// (paper §IV-A): LTNC, RLNC and WC behind one interface, so everything
// above them — the sans-I/O session Endpoint, the epidemic simulator, the
// examples — is scheme-agnostic.
//
// This is the public protocol surface of the library (promoted out of
// dissemination/, which now only hosts the simulation harness): a
// NodeProtocol answers the questions the session conversation asks —
// would you reject this advertised vector? what do you push next? are you
// complete? — while the Endpoint (session/endpoint.hpp) owns the wire
// conversation itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/coded_packet.hpp"
#include "common/op_counters.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/ltnc_codec.hpp"
#include "lt/bp_decoder.hpp"
#include "rlnc/rlnc_codec.hpp"
#include "wc/wc_node.hpp"

namespace ltnc::session {

enum class Scheme { kLtnc, kRlnc, kWc };

const char* scheme_name(Scheme scheme);

/// Parses "ltnc" / "rlnc" / "wc" (the names the CLI tools accept).
/// Returns false and leaves `out` untouched on anything else.
bool scheme_from_string(std::string_view name, Scheme& out);

/// How a receiver talks back during a transfer (paper §III-C):
///   kNone    push blindly; the receiver discards junk after paying for it
///   kBinary  the receiver aborts redundant transfers after the advertise
///   kSmart   the receiver ships its cc array; the sender constructs for it
enum class FeedbackMode { kNone, kBinary, kSmart };

const char* feedback_name(FeedbackMode mode);

/// Parses "none" / "binary" / "smart". Returns false on anything else.
bool feedback_from_string(std::string_view name, FeedbackMode& out);

class NodeProtocol {
 public:
  virtual ~NodeProtocol() = default;

  /// Full reception of a packet (payload included).
  virtual void deliver(const CodedPacket& packet) = 0;

  /// Binary feedback: would the node refuse this advertised code vector?
  virtual bool would_reject(const BitVector& coeffs) const = 0;

  /// Fresh packet to push, or nullopt if the node has nothing to say.
  virtual std::optional<CodedPacket> emit(Rng& rng) = 0;

  /// Variant used when a full feedback channel ships the receiver's cc
  /// array to the sender (LTNC smart construction §III-C.2; other schemes
  /// fall back to emit()).
  virtual std::optional<CodedPacket> emit_for(
      const std::vector<std::uint32_t>& receiver_cc, Rng& rng) {
    (void)receiver_cc;
    return emit(rng);
  }

  /// The cc array a receiver would ship over a full feedback channel
  /// (empty when the scheme has none).
  virtual const std::vector<std::uint32_t>* component_leaders() const {
    return nullptr;
  }

  /// Aggressiveness gate: may this node start pushing?
  virtual bool can_emit() const = 0;

  /// Progress: packets worth of useful information held (k = complete).
  virtual std::size_t useful_packets() const = 0;
  virtual bool complete() const = 0;

  /// Finalises decoding (RLNC back-substitution) and verifies every native
  /// against the expected deterministic content. Returns true on success.
  virtual bool finish_and_verify(std::uint64_t content_seed) = 0;

  virtual OpCounters decode_ops() const = 0;
  virtual OpCounters recode_ops() const = 0;
};

struct ProtocolParams {
  std::size_t k = 0;
  std::size_t payload_bytes = 0;
  /// Fraction of k a node must hold before it starts recoding
  /// (paper: ~1 % for LTNC; WC and RLNC push without delay).
  double aggressiveness = 0.01;
  core::LtncConfig ltnc{};   ///< k/payload_bytes filled in by the factory
  rlnc::RlncConfig rlnc{};
  wc::WcConfig wc{};
};

std::unique_ptr<NodeProtocol> make_node(Scheme scheme,
                                        const ProtocolParams& params);

// --- concrete adapters (exposed for unit tests) ---------------------------

class LtncProtocol final : public NodeProtocol {
 public:
  explicit LtncProtocol(const ProtocolParams& params);
  void deliver(const CodedPacket& packet) override;
  bool would_reject(const BitVector& coeffs) const override;
  std::optional<CodedPacket> emit(Rng& rng) override;
  std::optional<CodedPacket> emit_for(
      const std::vector<std::uint32_t>& receiver_cc, Rng& rng) override;
  const std::vector<std::uint32_t>* component_leaders() const override;
  bool can_emit() const override;
  std::size_t useful_packets() const override;
  bool complete() const override { return codec_.complete(); }
  bool finish_and_verify(std::uint64_t content_seed) override;
  OpCounters decode_ops() const override { return codec_.decode_ops(); }
  OpCounters recode_ops() const override { return codec_.recode_ops(); }

  const core::LtncCodec& codec() const { return codec_; }

 private:
  std::size_t threshold_;
  core::LtncCodec codec_;
};

class RlncProtocol final : public NodeProtocol {
 public:
  explicit RlncProtocol(const ProtocolParams& params);
  void deliver(const CodedPacket& packet) override;
  bool would_reject(const BitVector& coeffs) const override;
  std::optional<CodedPacket> emit(Rng& rng) override;
  bool can_emit() const override;
  std::size_t useful_packets() const override { return codec_.rank(); }
  bool complete() const override { return codec_.complete(); }
  bool finish_and_verify(std::uint64_t content_seed) override;
  OpCounters decode_ops() const override { return codec_.decode_ops(); }
  OpCounters recode_ops() const override { return codec_.recode_ops(); }

  const rlnc::RlncCodec& codec() const { return codec_; }

 private:
  std::size_t threshold_;
  rlnc::RlncCodec codec_;
};

class WcProtocol final : public NodeProtocol {
 public:
  explicit WcProtocol(const ProtocolParams& params);
  void deliver(const CodedPacket& packet) override;
  bool would_reject(const BitVector& coeffs) const override;
  std::optional<CodedPacket> emit(Rng& rng) override;
  bool can_emit() const override;
  std::size_t useful_packets() const override { return node_.received_count(); }
  bool complete() const override { return node_.complete(); }
  bool finish_and_verify(std::uint64_t content_seed) override;
  OpCounters decode_ops() const override { return node_.ops(); }
  OpCounters recode_ops() const override { return OpCounters{}; }

  const wc::WcNode& node() const { return node_; }

 private:
  std::size_t payload_bytes_;
  wc::WcNode node_;
};

/// A pure receiver: belief-propagation LT decoding with no recoding and
/// no pushes — the protocol a file-transfer sink or sensor gateway runs.
/// would_reject() is the §III-C control-only check (zero residual degree
/// after stripping decoded natives), so a binary feedback channel works
/// against plain-LT senders too.
class LtSinkProtocol final : public NodeProtocol {
 public:
  LtSinkProtocol(std::size_t k, std::size_t payload_bytes);
  void deliver(const CodedPacket& packet) override;
  bool would_reject(const BitVector& coeffs) const override;
  std::optional<CodedPacket> emit(Rng& rng) override;
  bool can_emit() const override { return false; }
  std::size_t useful_packets() const override {
    return decoder_.decoded_count() + decoder_.stored_count();
  }
  bool complete() const override { return decoder_.complete(); }
  bool finish_and_verify(std::uint64_t content_seed) override;
  OpCounters decode_ops() const override { return decoder_.ops(); }
  OpCounters recode_ops() const override { return OpCounters{}; }

  const lt::BpDecoder& decoder() const { return decoder_; }

 private:
  lt::BpDecoder decoder_;
};

}  // namespace ltnc::session
