#include "session/sharded.hpp"

#include <string>

#include "common/check.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "wire/codec.hpp"

namespace ltnc::session {

std::uint32_t shard_of(PeerId peer, ContentId content,
                       std::uint32_t num_shards) {
  LTNC_DCHECK(num_shards > 0);
  // splitmix64 finalizer over the conversation key. The multiply folds
  // the peer into the high bits so (peer, content) and (peer+1, content)
  // diverge completely before the avalanche.
  std::uint64_t x =
      content ^ (static_cast<std::uint64_t>(peer) * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % num_shards);
}

ShardedEndpoint::ShardedEndpoint(const ShardedConfig& config, ShardApp& app)
    : cfg_(config), app_(app) {
  LTNC_CHECK_MSG(config.num_shards > 0, "need at least one shard");
  LTNC_CHECK_MSG(config.iterations_per_tick > 0,
                 "iterations_per_tick must be positive");
  shards_.reserve(config.num_shards);
  for (std::uint32_t s = 0; s < config.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config.ring_capacity));
  }
  LTNC_TELEMETRY(
      if (cfg_.registry != nullptr) {
        drops_counter_ =
            &cfg_.registry->counter("ltnc_shard_inbound_drops_total");
        for (std::uint32_t s = 0; s < config.num_shards; ++s) {
          Shard& sh = *shards_[s];
          const std::string label = "shard=\"" + std::to_string(s) + "\"";
          sh.frames_in_counter =
              &cfg_.registry->counter("ltnc_shard_frames_in_total", label);
          sh.frames_out_counter =
              &cfg_.registry->counter("ltnc_shard_frames_out_total", label);
          sh.in_ring_occupancy = &cfg_.registry->histogram(
              "ltnc_shard_in_ring_occupancy_frames", label);
          sh.instruments.handshake_ticks = &cfg_.registry->histogram(
              "ltnc_session_handshake_ticks", label);
          sh.instruments.completion_ticks = &cfg_.registry->histogram(
              "ltnc_session_completion_ticks", label);
          sh.instruments.actor = s;
        }
      } if (cfg_.flight_recorder_capacity > 0) {
        for (std::uint32_t s = 0; s < config.num_shards; ++s) {
          shards_[s]->recorder = std::make_unique<telemetry::FlightRecorder>(
              cfg_.flight_recorder_capacity);
          shards_[s]->instruments.recorder = shards_[s]->recorder.get();
          shards_[s]->instruments.actor = s;
        }
      });
  // Rings exist before any worker starts; workers never touch each
  // other's shard.
  for (std::uint32_t s = 0; s < config.num_shards; ++s) {
    shards_[s]->thread = std::thread([this, s] { worker(s); });
  }
}

ShardedEndpoint::~ShardedEndpoint() { stop(); }

bool ShardedEndpoint::route_frame(PeerId peer, wire::Frame& frame) {
  ContentId content = 0;
  // A frame too mangled to peek still routes (by peer alone) so the
  // owning shard's hardened decode can count it as malformed — the I/O
  // thread never decides what is garbage.
  if (wire::peek_content(frame.bytes(), content) != wire::DecodeStatus::kOk) {
    content = 0;
  }
  const std::uint32_t s = shard_of(peer, content, num_shards());
  if (!shards_[s]->in.try_push(peer, frame)) {
    inbound_drops_.fetch_add(1, std::memory_order_relaxed);
    LTNC_TELEMETRY(if (drops_counter_ != nullptr) drops_counter_->add(1));
    return false;
  }
  return true;
}

bool ShardedEndpoint::poll_transmit(std::uint32_t shard, PeerId& peer,
                                    wire::Frame& out) {
  return shards_[shard]->out.try_pop(peer, out);
}

void ShardedEndpoint::request_expire(ContentId content) {
  if (stopped_) return;
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->expire_mu);
      shard->pending_expire.push_back(content);
    }
    shard->has_expire.store(true, std::memory_order_release);
  }
}

void ShardedEndpoint::worker(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  {
    std::unique_ptr<Endpoint> ep = app_.make_endpoint(shard_index);
    LTNC_CHECK_MSG(ep != nullptr, "ShardApp::make_endpoint returned null");
    LTNC_TELEMETRY(
        if (shard.instruments.handshake_ticks != nullptr ||
            shard.instruments.recorder != nullptr) {
          ep->set_telemetry(&shard.instruments);
        });
    wire::Frame rx;          // inbound scratch, circulates through `in`
    wire::Frame pending;     // outbound frame awaiting ring space
    PeerId pending_peer = 0;
    bool has_pending = false;
    std::vector<ContentId> expire_scratch;
    std::uint64_t iterations = 0;
    // Registry counters are flushed as deltas at tick boundaries, so the
    // per-frame path pays only the pre-existing shard atomics.
    [[maybe_unused]] std::uint64_t flushed_in = 0;
    [[maybe_unused]] std::uint64_t flushed_out = 0;

    while (!stop_.load(std::memory_order_relaxed)) {
      bool worked = false;

      PeerId peer = 0;
      while (shard.in.try_pop(peer, rx)) {
        ep->handle_frame(peer, rx.bytes());
        shard.frames_in.fetch_add(1, std::memory_order_relaxed);
        worked = true;
      }

      // Drain the endpoint's transmit queue into the outbound ring; a
      // full ring holds the frame in `pending` (backpressure — the
      // endpoint is never asked for more until it fits).
      while (true) {
        if (has_pending) {
          if (!shard.out.try_push(pending_peer, pending)) break;
          has_pending = false;
          shard.frames_out.fetch_add(1, std::memory_order_relaxed);
          worked = true;
        } else if (ep->poll_transmit(pending_peer, pending)) {
          has_pending = true;
        } else {
          break;
        }
      }

      if (!has_pending && ep->pending_transmit() < cfg_.pump_gate) {
        worked = app_.pump(shard_index, *ep) || worked;
      }

      if (++iterations % cfg_.iterations_per_tick == 0) {
        if (shard.has_expire.load(std::memory_order_acquire)) {
          {
            std::lock_guard<std::mutex> lock(shard.expire_mu);
            std::swap(expire_scratch, shard.pending_expire);
            shard.has_expire.store(false, std::memory_order_relaxed);
          }
          for (const ContentId id : expire_scratch) ep->expire_content(id);
          expire_scratch.clear();
          worked = true;
        }
        ep->tick(iterations / cfg_.iterations_per_tick);
        LTNC_TELEMETRY(
            if (shard.frames_in_counter != nullptr) {
              const std::uint64_t in_now =
                  shard.frames_in.load(std::memory_order_relaxed);
              const std::uint64_t out_now =
                  shard.frames_out.load(std::memory_order_relaxed);
              shard.frames_in_counter->add(in_now - flushed_in);
              shard.frames_out_counter->add(out_now - flushed_out);
              flushed_in = in_now;
              flushed_out = out_now;
              shard.in_ring_occupancy->record(shard.in.size_approx());
            });
      }
      if (!worked) std::this_thread::yield();
    }

    shard.report.stats = ep->stats();
    shard.report.frames_in = shard.frames_in.load(std::memory_order_relaxed);
    shard.report.frames_out =
        shard.frames_out.load(std::memory_order_relaxed);
    // `ep`, `rx` and `pending` die here, before the arena snapshot, so
    // the report sees the shard's final lease/release tallies.
  }
  shard.report.arena = WordArena::local().stats();
  // Frames this shard leased may live on in the rings (ownership
  // transfer); reclaim only frees the thread's *cached* blocks, which is
  // exactly what would otherwise leak with the thread's TLS.
  WordArena::reclaim_local();
}

void ShardedEndpoint::stop() {
  if (stopped_) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  stopped_ = true;
}

std::uint64_t ShardedEndpoint::frames_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->frames_in.load(std::memory_order_relaxed);
  }
  return total;
}

const ShardedEndpoint::ShardReport& ShardedEndpoint::report(
    std::uint32_t shard) const {
  LTNC_CHECK_MSG(stopped_, "reports are published by stop()");
  return shards_[shard]->report;
}

SessionStats ShardedEndpoint::aggregate_stats() const {
  LTNC_CHECK_MSG(stopped_, "reports are published by stop()");
  SessionStats total;
  for (const auto& shard : shards_) total += shard->report.stats;
  return total;
}

const telemetry::FlightRecorder* ShardedEndpoint::flight_recorder(
    std::uint32_t shard) const {
  LTNC_CHECK_MSG(stopped_, "flight recorders are single-writer: dump only "
                           "after stop()");
  return shards_[shard]->recorder.get();
}

}  // namespace ltnc::session
