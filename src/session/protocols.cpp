#include "session/protocols.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ltnc::session {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kLtnc:
      return "LTNC";
    case Scheme::kRlnc:
      return "RLNC";
    case Scheme::kWc:
      return "WC";
  }
  return "?";
}

bool scheme_from_string(std::string_view name, Scheme& out) {
  if (name == "ltnc" || name == "LTNC") {
    out = Scheme::kLtnc;
  } else if (name == "rlnc" || name == "RLNC") {
    out = Scheme::kRlnc;
  } else if (name == "wc" || name == "WC") {
    out = Scheme::kWc;
  } else {
    return false;
  }
  return true;
}

const char* feedback_name(FeedbackMode mode) {
  switch (mode) {
    case FeedbackMode::kNone:
      return "none";
    case FeedbackMode::kBinary:
      return "binary";
    case FeedbackMode::kSmart:
      return "smart";
  }
  return "?";
}

bool feedback_from_string(std::string_view name, FeedbackMode& out) {
  if (name == "none") {
    out = FeedbackMode::kNone;
  } else if (name == "binary") {
    out = FeedbackMode::kBinary;
  } else if (name == "smart") {
    out = FeedbackMode::kSmart;
  } else {
    return false;
  }
  return true;
}

namespace {

std::size_t aggressiveness_threshold(const ProtocolParams& params) {
  const double raw =
      params.aggressiveness * static_cast<double>(params.k);
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(raw)));
}

}  // namespace

// --- LTNC -----------------------------------------------------------------

LtncProtocol::LtncProtocol(const ProtocolParams& params)
    : threshold_(aggressiveness_threshold(params)),
      codec_([&] {
        core::LtncConfig cfg = params.ltnc;
        cfg.k = params.k;
        cfg.payload_bytes = params.payload_bytes;
        return cfg;
      }()) {}

void LtncProtocol::deliver(const CodedPacket& packet) {
  codec_.receive(packet);
}

bool LtncProtocol::would_reject(const BitVector& coeffs) const {
  return codec_.would_reject(coeffs);
}

std::optional<CodedPacket> LtncProtocol::emit(Rng& rng) {
  return codec_.recode(rng);
}

std::optional<CodedPacket> LtncProtocol::emit_for(
    const std::vector<std::uint32_t>& receiver_cc, Rng& rng) {
  return codec_.recode_for(receiver_cc, rng);
}

const std::vector<std::uint32_t>* LtncProtocol::component_leaders() const {
  return &codec_.component_leaders();
}

bool LtncProtocol::can_emit() const {
  return useful_packets() >= threshold_;
}

std::size_t LtncProtocol::useful_packets() const {
  // Decoded natives plus stored (still-encoded) packets approximate the
  // information the node can recode from.
  return codec_.decoded_count() + codec_.stored_count();
}

bool LtncProtocol::finish_and_verify(std::uint64_t content_seed) {
  if (!codec_.complete()) return false;
  for (std::size_t i = 0; i < codec_.k(); ++i) {
    if (codec_.native_payload(static_cast<NativeIndex>(i)) !=
        Payload::deterministic(codec_.payload_bytes(), content_seed, i)) {
      return false;
    }
  }
  return true;
}

// --- RLNC -------------------------------------------------------------------

RlncProtocol::RlncProtocol(const ProtocolParams& params)
    : threshold_(1),  // paper: "in WC and RLNC, recoding can be done
                      // without delay"
      codec_([&] {
        rlnc::RlncConfig cfg = params.rlnc;
        cfg.k = params.k;
        cfg.payload_bytes = params.payload_bytes;
        return cfg;
      }()) {}

void RlncProtocol::deliver(const CodedPacket& packet) {
  codec_.receive(packet);
}

bool RlncProtocol::would_reject(const BitVector& coeffs) const {
  return codec_.would_reject(coeffs);
}

std::optional<CodedPacket> RlncProtocol::emit(Rng& rng) {
  return codec_.recode(rng);
}

bool RlncProtocol::can_emit() const { return codec_.rank() >= threshold_; }

bool RlncProtocol::finish_and_verify(std::uint64_t content_seed) {
  if (!codec_.complete()) return false;
  for (std::size_t i = 0; i < codec_.k(); ++i) {
    if (codec_.native_payload(i) !=
        Payload::deterministic(codec_.payload_bytes(), content_seed, i)) {
      return false;
    }
  }
  return true;
}

// --- WC ---------------------------------------------------------------------

WcProtocol::WcProtocol(const ProtocolParams& params)
    : payload_bytes_(params.payload_bytes),
      node_([&] {
        wc::WcConfig cfg = params.wc;
        cfg.k = params.k;
        cfg.payload_bytes = params.payload_bytes;
        return cfg;
      }()) {}

void WcProtocol::deliver(const CodedPacket& packet) { node_.receive(packet); }

bool WcProtocol::would_reject(const BitVector& coeffs) const {
  return node_.would_reject(coeffs);
}

std::optional<CodedPacket> WcProtocol::emit(Rng& rng) {
  return node_.emit(rng);
}

bool WcProtocol::can_emit() const { return node_.buffered() > 0; }

bool WcProtocol::finish_and_verify(std::uint64_t content_seed) {
  if (!node_.complete()) return false;
  for (std::size_t i = 0; i < node_.k(); ++i) {
    if (node_.native_payload(i) !=
        Payload::deterministic(payload_bytes_, content_seed, i)) {
      return false;
    }
  }
  return true;
}

// --- LT sink ----------------------------------------------------------------

LtSinkProtocol::LtSinkProtocol(std::size_t k, std::size_t payload_bytes)
    : decoder_(k, payload_bytes) {}

void LtSinkProtocol::deliver(const CodedPacket& packet) {
  decoder_.receive(packet);
}

bool LtSinkProtocol::would_reject(const BitVector& coeffs) const {
  return decoder_.residual_degree(coeffs) == 0;
}

std::optional<CodedPacket> LtSinkProtocol::emit(Rng& rng) {
  (void)rng;
  return std::nullopt;  // a sink never pushes
}

bool LtSinkProtocol::finish_and_verify(std::uint64_t content_seed) {
  if (!decoder_.complete()) return false;
  for (std::size_t i = 0; i < decoder_.k(); ++i) {
    if (decoder_.native_payload(static_cast<NativeIndex>(i)) !=
        Payload::deterministic(decoder_.payload_bytes(), content_seed, i)) {
      return false;
    }
  }
  return true;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<NodeProtocol> make_node(Scheme scheme,
                                        const ProtocolParams& params) {
  LTNC_CHECK_MSG(params.k > 0, "k must be positive");
  switch (scheme) {
    case Scheme::kLtnc:
      return std::make_unique<LtncProtocol>(params);
    case Scheme::kRlnc:
      return std::make_unique<RlncProtocol>(params);
    case Scheme::kWc:
      return std::make_unique<WcProtocol>(params);
  }
  LTNC_CHECK_MSG(false, "unknown scheme");
  return nullptr;
}

}  // namespace ltnc::session
