// The compile-time gate for the whole telemetry layer.
//
// Build with -DLTNC_TELEMETRY_DISABLED=1 (CMake: -DLTNC_TELEMETRY=OFF)
// and every LTNC_TELEMETRY(...) statement in the hot paths compiles to
// nothing — no loads, no branches, no atomic traffic, and the golden
// trajectories / byte-for-byte compat suites see literally the seed
// binary's behaviour. When enabled (the default), instrumentation is
// observer-only: it draws no RNG, sends no bytes, and only fires when a
// component has had instruments attached (null checks inside the macro
// body, written by the call site).
//
// Usage at an instrumentation point:
//
//   LTNC_TELEMETRY(
//       if (telemetry_ != nullptr && telemetry_->handshake_ticks) {
//         telemetry_->handshake_ticks->record(now - c.out.offered_at);
//       });
//
// The instruments structs below are the attachment surface: plain
// pointer bundles a driver fills from its Registry/FlightRecorder and
// hands to a component via set_telemetry(). They are defined even when
// telemetry is disabled (so setters keep compiling); only the call
// sites elide.
#pragma once

#include <cstdint>

#if defined(LTNC_TELEMETRY_DISABLED)
#define LTNC_TELEMETRY_ENABLED 0
#define LTNC_TELEMETRY(...) \
  do {                      \
  } while (false)
#else
#define LTNC_TELEMETRY_ENABLED 1
#define LTNC_TELEMETRY(...) \
  do {                      \
    __VA_ARGS__;            \
  } while (false)
#endif

namespace ltnc::telemetry {

class Counter;
class Gauge;
class Histogram;
class Registry;
class FlightRecorder;

/// Instruments a session::Endpoint. Latencies are in the endpoint's own
/// tick domain (whatever the driver's tick cadence is).
struct SessionInstruments {
  Histogram* handshake_ticks = nullptr;    ///< advertise → proceed/abort
  Histogram* completion_ticks = nullptr;   ///< first payload → content done
  FlightRecorder* recorder = nullptr;      ///< protocol event trace
  std::uint32_t actor = 0;                 ///< trace tid (node/shard id)
};

/// Instruments a net::UdpTransport.
struct TransportInstruments {
  Histogram* send_batch_frames = nullptr;  ///< frames per sendmmsg
  Histogram* recv_batch_frames = nullptr;  ///< frames per recvmmsg
  Counter* would_block = nullptr;          ///< EAGAIN/EWOULDBLOCK
  Counter* transient_errors = nullptr;     ///< ECONNREFUSED/EINTR/ENOBUFS…
  Counter* fatal_errors = nullptr;         ///< everything else
};

}  // namespace ltnc::telemetry
