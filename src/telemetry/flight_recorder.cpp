#include "telemetry/flight_recorder.hpp"

#include <bit>

namespace ltnc::telemetry {

std::string_view trace_point_name(TracePoint p) {
  switch (p) {
    case TracePoint::kAdvertiseSent: return "advertise_sent";
    case TracePoint::kAdvertiseRecv: return "advertise_recv";
    case TracePoint::kAbortSent: return "abort_sent";
    case TracePoint::kAbortRecv: return "abort_recv";
    case TracePoint::kProceedSent: return "proceed_sent";
    case TracePoint::kProceedRecv: return "proceed_recv";
    case TracePoint::kPayloadSent: return "payload_sent";
    case TracePoint::kPayloadDelivered: return "payload_delivered";
    case TracePoint::kAckSent: return "ack_sent";
    case TracePoint::kAckRecv: return "ack_recv";
    case TracePoint::kRetransmit: return "retransmit";
    case TracePoint::kRingDrop: return "ring_drop";
    case TracePoint::kChurn: return "churn";
    case TracePoint::kSourceInject: return "source_inject";
    case TracePoint::kArm: return "arm";
    case TracePoint::kDisarm: return "disarm";
    case TracePoint::kComplete: return "complete";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  if (capacity < 8) capacity = 8;
  ring_.resize(std::bit_ceil(capacity));
  mask_ = ring_.size() - 1;
}

std::vector<TraceRecord> FlightRecorder::ordered() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest surviving record sits at head_ - n (mod capacity).
  const std::uint64_t start = head_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) & mask_]);
  }
  return out;
}

namespace {

void write_events(std::ostream& out, const FlightRecorder& rec, bool& first) {
  for (const TraceRecord& r : rec.ordered()) {
    if (!first) out << ",\n";
    first = false;
    out << R"({"name":")" << trace_point_name(r.point)
        << R"(","ph":"i","ts":)" << r.ts << R"(,"pid":0,"tid":)" << r.actor
        << R"(,"s":"t","args":{"detail":)" << r.detail << "}}";
  }
}

}  // namespace

void FlightRecorder::dump_chrome_trace(std::ostream& out) const {
  dump_chrome_trace_multi(out, {this});
}

void dump_chrome_trace_multi(std::ostream& out,
                             const std::vector<const FlightRecorder*>& recs) {
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const FlightRecorder* r : recs) {
    if (r != nullptr) write_events(out, *r, first);
  }
  out << "\n]}\n";
}

}  // namespace ltnc::telemetry
