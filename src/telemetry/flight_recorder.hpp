// Flight recorder — an opt-in bounded ring of timestamped protocol
// events, the "what sequence of events led to this stall" tool.
//
// Design constraints, in priority order:
//   1. record() must be cheap enough to leave compiled in on hot paths
//      when a recorder is attached: one store of a 24-byte POD plus a
//      counter bump, no allocation, no branches beyond the mask.
//   2. Bounded: a power-of-2 ring that silently overwrites the oldest
//      record. A wedged run keeps exactly the last `capacity()` events —
//      the ones that explain the wedge.
//   3. Single-writer. The ring has no internal synchronisation; each
//      shard/worker owns its own recorder (mirroring the per-shard
//      metric discipline) and dump happens after the writer quiesces.
//
// Dump format is Chrome trace_event JSON ("ph":"i" instant events), so
// `chrome://tracing` and Perfetto load it directly: tid = actor (node or
// shard id), ts = the caller's clock (round number, tick count, or µs —
// the recorder does not own a clock, by design: simulations trace in
// virtual time, transports in wall time).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace ltnc::telemetry {

/// Protocol-event vocabulary across every instrumented layer. One byte;
/// extend freely (names live in trace_point_name()).
enum class TracePoint : std::uint8_t {
  // session::Endpoint conversation (§III-C advertise → feedback → data)
  kAdvertiseSent,
  kAdvertiseRecv,
  kAbortSent,
  kAbortRecv,
  kProceedSent,
  kProceedRecv,
  kPayloadSent,
  kPayloadDelivered,
  kAckSent,
  kAckRecv,
  kRetransmit,
  // ShardedEndpoint data plane
  kRingDrop,
  // dissem engines
  kChurn,
  kSourceInject,
  kArm,
  kDisarm,
  kComplete,
};

std::string_view trace_point_name(TracePoint p);

struct TraceRecord {
  std::uint64_t ts = 0;      ///< caller's clock: round, tick, or µs
  std::uint64_t detail = 0;  ///< point-specific payload (peer, content, seq…)
  std::uint32_t actor = 0;   ///< node id / shard id — becomes the trace tid
  TracePoint point = TracePoint::kAdvertiseSent;
};

class FlightRecorder {
 public:
  /// Capacity is rounded up to a power of two (min 8).
  explicit FlightRecorder(std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(TracePoint point, std::uint64_t ts, std::uint32_t actor,
              std::uint64_t detail = 0) {
    ring_[head_ & mask_] = TraceRecord{ts, detail, actor, point};
    ++head_;
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Records currently held (≤ capacity).
  std::size_t size() const {
    return head_ < ring_.size() ? head_ : ring_.size();
  }
  /// Total record() calls over the recorder's lifetime.
  std::uint64_t total_recorded() const { return head_; }
  /// Records lost to wraparound.
  std::uint64_t dropped() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }

  /// Surviving records, oldest first (wraparound-corrected).
  std::vector<TraceRecord> ordered() const;

  /// Chrome trace_event JSON: {"traceEvents":[...]} — loadable in
  /// chrome://tracing or https://ui.perfetto.dev.
  void dump_chrome_trace(std::ostream& out) const;

  void clear() { head_ = 0; }

 private:
  std::vector<TraceRecord> ring_;
  std::uint64_t mask_ = 0;
  std::uint64_t head_ = 0;  ///< monotone write index; plain — single writer
};

/// Renders several recorders (e.g. one per shard) into one trace file.
void dump_chrome_trace_multi(
    std::ostream& out, const std::vector<const FlightRecorder*>& recorders);

}  // namespace ltnc::telemetry
