#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace ltnc::telemetry {

std::uint64_t Snapshot::HistogramSample::count() const {
  std::uint64_t n = 0;
  for (std::uint64_t b : buckets) n += b;
  return n;
}

double Snapshot::HistogramSample::sum_estimate() const {
  double sum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lo = static_cast<double>(Histogram::bucket_floor(i));
    const double hi = static_cast<double>(Histogram::bucket_ceil(i));
    sum += static_cast<double>(buckets[i]) * (lo + hi) / 2.0;
  }
  return sum;
}

double Snapshot::HistogramSample::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the buckets.
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      // Log-interpolate inside the bucket: observations in bucket i are
      // spread over [floor, ceil], a factor-of-2 span, so geometric
      // interpolation matches the bucketing scheme.
      const double lo =
          std::max(1.0, static_cast<double>(Histogram::bucket_floor(i)));
      const double hi =
          std::max(1.0, static_cast<double>(Histogram::bucket_ceil(i)));
      if (i == 0) return 0.0;  // bucket 0 is exactly {0}
      const double frac =
          buckets[i] == 0
              ? 0.0
              : (rank - static_cast<double>(seen)) /
                    static_cast<double>(buckets[i]);
      return lo * std::pow(hi / lo, std::clamp(frac, 0.0, 1.0));
    }
    seen = next;
  }
  return static_cast<double>(Histogram::bucket_ceil(buckets.size() - 1));
}

namespace {

template <typename Sample>
Sample* find_series(std::vector<Sample>& v, const std::string& name,
                    const std::string& label) {
  for (auto& s : v) {
    if (s.name == name && s.label == label) return &s;
  }
  return nullptr;
}

}  // namespace

void Snapshot::merge(const Snapshot& other) {
  for (const auto& c : other.counters) {
    if (auto* mine = find_series(counters, c.name, c.label)) {
      mine->value += c.value;
    } else {
      counters.push_back(c);
    }
  }
  for (const auto& g : other.gauges) {
    if (auto* mine = find_series(gauges, g.name, g.label)) {
      mine->value += g.value;
    } else {
      gauges.push_back(g);
    }
  }
  for (const auto& h : other.histograms) {
    if (auto* mine = find_series(histograms, h.name, h.label)) {
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        mine->buckets[i] += h.buckets[i];
      }
    } else {
      histograms.push_back(h);
    }
  }
}

Snapshot Snapshot::aggregated() const {
  Snapshot out;
  for (auto c : counters) {
    c.label.clear();
    if (auto* mine = find_series(out.counters, c.name, c.label)) {
      mine->value += c.value;
    } else {
      out.counters.push_back(std::move(c));
    }
  }
  for (auto g : gauges) {
    g.label.clear();
    if (auto* mine = find_series(out.gauges, g.name, g.label)) {
      mine->value += g.value;
    } else {
      out.gauges.push_back(std::move(g));
    }
  }
  for (auto h : histograms) {
    h.label.clear();
    if (auto* mine = find_series(out.histograms, h.name, h.label)) {
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        mine->buckets[i] += h.buckets[i];
      }
    } else {
      out.histograms.push_back(std::move(h));
    }
  }
  return out;
}

const Snapshot::HistogramSample* Snapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const Snapshot::CounterSample* Snapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

template <typename T>
T& Registry::get_or_create(std::vector<Named<T>>& v, std::string_view name,
                           std::string_view label) {
  for (auto& n : v) {
    if (n.name == name && n.label == label) return *n.metric;
  }
  v.push_back(Named<T>{std::string(name), std::string(label),
                       std::make_unique<T>()});
  return *v.back().metric;
}

Counter& Registry::counter(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(counters_, name, label);
}

Gauge& Registry::gauge(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(gauges_, name, label);
}

Histogram& Registry::histogram(std::string_view name, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  return get_or_create(histograms_, name, label);
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& n : counters_) {
    snap.counters.push_back({n.name, n.label, n.metric->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& n : gauges_) {
    snap.gauges.push_back({n.name, n.label, n.metric->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& n : histograms_) {
    Snapshot::HistogramSample h;
    h.name = n.name;
    h.label = n.label;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = n.metric->bucket_count(i);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace ltnc::telemetry
