#include "telemetry/export.hpp"

#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <string>

namespace ltnc::telemetry {
namespace {

// `{label,le="..."}` / `{label}` / `` — composes the preformatted
// `key="value"` label with an optional histogram `le`.
std::string label_block(const std::string& label, const std::string& le = {}) {
  if (label.empty() && le.empty()) return {};
  std::string out = "{";
  out += label;
  if (!le.empty()) {
    if (!label.empty()) out += ",";
    out += "le=\"" + le + "\"";
  }
  out += "}";
  return out;
}

std::string fmt_double(double d) {
  std::ostringstream tmp;
  tmp << std::setprecision(std::numeric_limits<double>::max_digits10) << d;
  return tmp.str();
}

// # HELP / # TYPE headers, once per metric name.
void header(std::ostream& out, std::set<std::string>& seen,
            const std::string& name, std::string_view type,
            std::string_view help) {
  if (!seen.insert(name).second) return;
  out << "# HELP " << name << " " << help << "\n";
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

void render_prometheus(std::ostream& out, const Snapshot& snap) {
  std::set<std::string> seen;
  for (const auto& c : snap.counters) {
    header(out, seen, c.name, "counter", "ltnc runtime counter");
    out << c.name << label_block(c.label) << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    header(out, seen, g.name, "gauge", "ltnc runtime gauge");
    out << g.name << label_block(g.label) << " " << g.value << "\n";
  }
  for (const auto& h : snap.histograms) {
    header(out, seen, h.name, "histogram",
           "ltnc power-of-2 latency histogram (sum is a bucket-midpoint "
           "estimate)");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // cumulative: sparse emission is valid
      cum += h.buckets[i];
      out << h.name << "_bucket"
          << label_block(h.label, std::to_string(Histogram::bucket_ceil(i)))
          << " " << cum << "\n";
    }
    out << h.name << "_bucket" << label_block(h.label, "+Inf") << " " << cum
        << "\n";
    out << h.name << "_sum" << label_block(h.label) << " "
        << fmt_double(h.sum_estimate()) << "\n";
    out << h.name << "_count" << label_block(h.label) << " " << cum << "\n";
  }
}

std::vector<metrics::RunRecord> snapshot_records(const Snapshot& snap) {
  std::vector<metrics::RunRecord> rows;
  rows.reserve(snap.counters.size() + snap.gauges.size() +
               snap.histograms.size());
  // Every row carries the full column set so the CSV writer's
  // uniform-layout check holds across mixed metric kinds.
  auto base = [](const std::string& name, const std::string& label,
                 std::string_view kind) {
    metrics::RunRecord r;
    r.set("metric", name);
    r.set("label", label);
    r.set("kind", std::string(kind));
    return r;
  };
  auto pad_histogram_columns = [](metrics::RunRecord& r) {
    r.set("count", std::uint64_t{0});
    r.set("p50", 0.0);
    r.set("p99", 0.0);
    r.set("p999", 0.0);
    r.set("mean", 0.0);
  };
  for (const auto& c : snap.counters) {
    auto r = base(c.name, c.label, "counter");
    r.set("value", static_cast<double>(c.value));
    pad_histogram_columns(r);
    rows.push_back(std::move(r));
  }
  for (const auto& g : snap.gauges) {
    auto r = base(g.name, g.label, "gauge");
    r.set("value", static_cast<double>(g.value));
    pad_histogram_columns(r);
    rows.push_back(std::move(r));
  }
  for (const auto& h : snap.histograms) {
    auto r = base(h.name, h.label, "histogram");
    const std::uint64_t n = h.count();
    r.set("value", h.sum_estimate());
    r.set("count", n);
    r.set("p50", h.quantile(0.50));
    r.set("p99", h.quantile(0.99));
    r.set("p999", h.quantile(0.999));
    r.set("mean", n == 0 ? 0.0 : h.sum_estimate() / static_cast<double>(n));
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace ltnc::telemetry
