// Snapshot renderers — the bridge from the in-process registry to the
// outside world.
//
//   render_prometheus   text exposition format (the thing a Prometheus
//                       scrape job or `curl | promtool check metrics`
//                       consumes). Histograms come out as classic
//                       cumulative `_bucket{le=...}` series with the
//                       power-of-2 bucket ceilings as thresholds, plus
//                       `_count` and a midpoint-estimated `_sum`.
//
//   snapshot_records    flattens a Snapshot into metrics::RunRecord rows
//                       (one per series; histograms carry count/p50/p99/
//                       p999/mean) so the existing JSON/CSV Emitter — and
//                       bench/diff_bench.py — can ingest live telemetry
//                       with zero new plumbing.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "metrics/emitter.hpp"
#include "telemetry/metrics.hpp"

namespace ltnc::telemetry {

/// Prometheus text exposition. `help_prefix` seeds the # HELP lines
/// (e.g. "ltnc"); every metric gets # HELP / # TYPE headers once, label
/// values are escaped per the exposition spec.
void render_prometheus(std::ostream& out, const Snapshot& snap);

/// One RunRecord per series. Counter rows: {metric, label, value}.
/// Gauge rows: {metric, label, value}. Histogram rows:
/// {metric, label, count, p50, p99, p999, mean}.
std::vector<metrics::RunRecord> snapshot_records(const Snapshot& snap);

}  // namespace ltnc::telemetry
