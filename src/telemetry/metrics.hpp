// Shard-safe runtime metrics — the always-on half of the telemetry layer.
//
// Three primitives, all lock-free on the write path:
//
//   Counter    monotonic u64, add() = one relaxed fetch_add
//   Gauge      signed level, set()/add(), relaxed
//   Histogram  65 fixed power-of-2 buckets over u64 values; record() is
//              exactly ONE relaxed increment (bucket index = bit_width of
//              the value), zero allocation, no sum/min/max side counters —
//              count is derived from the buckets and the sum is estimated
//              from bucket midpoints at snapshot time. p50/p99/p999 come
//              out log-interpolated, which is what a latency distribution
//              wants anyway.
//
// A Registry owns named instances. Registration (get-or-create by
// (name, label)) is the cold path — mutex-guarded, may allocate — and
// hands back a stable reference the hot path updates without ever
// touching the registry again. Shard discipline: give every worker thread
// its own instances (same name, per-shard label, e.g. `shard="3"`), so
// the data plane never shares a cache line; snapshot() then reads
// everything with relaxed loads (TSan-clean against concurrent writers)
// and Snapshot::aggregated() folds the per-shard series back into one
// logical metric. Writers racing a snapshot cost at most a torn *view*
// (some adds in, some not) — never a torn value, never UB.
//
// Naming convention (Prometheus-compatible): `ltnc_<subsystem>_<what>`,
// counters suffixed `_total`, histograms named for their unit
// (`_ticks`, `_us`, `_rounds`, `_frames`). The label, when present, is a
// single preformatted `key="value"` pair.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ltnc::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  // One counter per cache line: per-shard instances must never false-share.
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  /// Bucket i holds values v with bit_width(v) == i: bucket 0 is exactly
  /// {0}, bucket i (i >= 1) is [2^(i-1), 2^i - 1], bucket 64 tops out at
  /// UINT64_MAX. 65 buckets cover the whole u64 range; a power of two
  /// 2^j lands in bucket j+1 (the bucket it *starts*).
  static constexpr std::size_t kBuckets = 65;

  static constexpr std::size_t bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value bucket i holds.
  static constexpr std::uint64_t bucket_floor(std::size_t i) {
    return i <= 1 ? (i == 0 ? 0 : 1) : std::uint64_t{1} << (i - 1);
  }
  /// Largest value bucket i holds (inclusive — the Prometheus `le`).
  static constexpr std::uint64_t bucket_ceil(std::size_t i) {
    return i >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
  }

  /// The hot path: one relaxed increment, nothing else.
  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// A point-in-time read of a registry (or several, via merge()): plain
/// values, safe to ship across threads, render, or diff.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::string label;  ///< preformatted `key="value"`, may be empty
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string label;
    std::int64_t value = 0;
  };
  struct HistogramSample {
    std::string name;
    std::string label;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};

    std::uint64_t count() const;
    /// Bucket-midpoint estimate (documented as such in the exposition).
    double sum_estimate() const;
    /// Log-interpolated quantile, q in [0, 1]. 0 when empty.
    double quantile(double q) const;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Folds `other` in: same (name, label) series are summed (gauges
  /// added), new series appended. How a multi-registry deployment (one
  /// registry per thread fleet) builds its unified view.
  void merge(const Snapshot& other);

  /// Collapses labels away: every series of one name becomes a single
  /// label-less series with summed counts — the per-shard-to-logical
  /// aggregation the sharded data plane wants for p50/p99 readouts.
  Snapshot aggregated() const;

  const HistogramSample* find_histogram(std::string_view name) const;
  const CounterSample* find_counter(std::string_view name) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by (name, label). Cold path (mutex, may allocate);
  /// the returned reference stays valid for the registry's lifetime and
  /// is the hot-path handle. Safe to call from any thread.
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  Histogram& histogram(std::string_view name, std::string_view label = {});

  /// Relaxed read of every metric. Safe against concurrent writers (the
  /// view may be mid-update torn across metrics, never within one).
  Snapshot snapshot() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::string label;
    std::unique_ptr<T> metric;  ///< unique_ptr: stable address across growth
  };

  template <typename T>
  static T& get_or_create(std::vector<Named<T>>& v, std::string_view name,
                          std::string_view label);

  mutable std::mutex mu_;  ///< guards the vectors, never the metric values
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

}  // namespace ltnc::telemetry
