// Umbrella header for the LTNC library.
//
// Pulls in the whole public API in dependency order. Downstream users who
// only need one layer can include the individual headers instead:
//
//   common/…        GF(2) bit vectors, payloads, RNG, sampling, stats
//   gf2/…           Gaussian elimination (RLNC decoding, test oracles)
//   lt/…            LT erasure codes: Soliton distributions, encoder,
//                   belief-propagation decoder
//   core/…          LTNC — the recoding network-code (paper §III),
//                   plus the generations extension
//   rlnc/…, wc/…    the paper's two baselines
//   wire/…          versioned binary wire codec + frame buffers
//   net/…           peer sampling, traffic accounting, transports
//   session/…       scheme-agnostic NodeProtocol adapters + the sans-I/O
//                   session Endpoint (the protocol state machine)
//   dissemination/… the epidemic simulation harness over session/
//   metrics/…       Monte-Carlo experiment harness
#pragma once

#include "common/bitvector.hpp"       // IWYU pragma: export
#include "common/coded_packet.hpp"    // IWYU pragma: export
#include "common/discrete_distribution.hpp"  // IWYU pragma: export
#include "common/fenwick.hpp"         // IWYU pragma: export
#include "common/op_counters.hpp"     // IWYU pragma: export
#include "common/payload.hpp"         // IWYU pragma: export
#include "common/rng.hpp"             // IWYU pragma: export
#include "common/stats.hpp"           // IWYU pragma: export
#include "common/table.hpp"           // IWYU pragma: export
#include "common/types.hpp"           // IWYU pragma: export
#include "core/generations.hpp"      // IWYU pragma: export
#include "core/ltnc_codec.hpp"       // IWYU pragma: export
#include "dissemination/simulation.hpp"  // IWYU pragma: export
#include "gf2/gaussian.hpp"          // IWYU pragma: export
#include "gf2/gf2_matrix.hpp"        // IWYU pragma: export
#include "lt/bp_decoder.hpp"         // IWYU pragma: export
#include "lt/lt_encoder.hpp"         // IWYU pragma: export
#include "lt/soliton.hpp"            // IWYU pragma: export
#include "metrics/experiment.hpp"    // IWYU pragma: export
#include "net/peer_sampler.hpp"      // IWYU pragma: export
#include "net/sim_channel.hpp"       // IWYU pragma: export
#include "net/traffic.hpp"           // IWYU pragma: export
#include "net/transport.hpp"         // IWYU pragma: export
#include "net/udp_transport.hpp"     // IWYU pragma: export
#include "rlnc/rlnc_codec.hpp"       // IWYU pragma: export
#include "session/endpoint.hpp"      // IWYU pragma: export
#include "session/protocols.hpp"     // IWYU pragma: export
#include "wc/wc_node.hpp"            // IWYU pragma: export
#include "wire/codec.hpp"            // IWYU pragma: export
#include "wire/frame.hpp"            // IWYU pragma: export
