#include "common/coded_packet.hpp"

#include "wire/codec.hpp"

namespace ltnc {

std::size_t CodedPacket::wire_bytes() const {
  return wire::serialized_size(*this);
}

}  // namespace ltnc
