#include "common/coded_packet.hpp"

// CodedPacket is header-only today; this translation unit anchors the
// library target and keeps a stable home for future out-of-line members.
namespace ltnc {}
