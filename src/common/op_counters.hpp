// Architecture-neutral cost accounting.
//
// The paper (Fig. 8) separates the cost of operations on *control*
// structures (code vectors, Tanner graph / code matrix bookkeeping) from
// operations on *data* (payload XORs). Every codec in this library charges
// its work to an OpCounters instance so the benchmarks can report both
// measured wall time and exact operation counts.
#pragma once

#include <cstdint>

namespace ltnc {

struct OpCounters {
  /// 64-bit word operations on code vectors and GF(2) matrix rows.
  std::uint64_t control_word_ops = 0;
  /// Structure bookkeeping steps: Tanner-graph edge updates, heap/index
  /// operations, union-find steps. One unit ≈ one pointer-chasing step.
  std::uint64_t control_steps = 0;
  /// 64-bit word operations on payload data.
  std::uint64_t data_word_ops = 0;
  /// Number of operations performed (recodes, decodes, receives) — the
  /// denominator for per-op averages.
  std::uint64_t invocations = 0;

  double data_bytes() const { return static_cast<double>(data_word_ops) * 8.0; }
  /// Total control units (word ops + steps) — the paper's "control" plane.
  std::uint64_t control_total() const {
    return control_word_ops + control_steps;
  }

  OpCounters& operator+=(const OpCounters& o) {
    control_word_ops += o.control_word_ops;
    control_steps += o.control_steps;
    data_word_ops += o.data_word_ops;
    invocations += o.invocations;
    return *this;
  }

  void reset() { *this = OpCounters{}; }
};

}  // namespace ltnc
