// Fenwick (binary indexed) tree over a fixed-size array of counters.
//
// Used by the LTNC degree picker to evaluate the two reachability bounds of
// §III-B.1 in O(log k): one tree carries i·n(i) (weighted packet-degree
// histogram), another carries the histogram of per-native minimum available
// degree (coverage bound).
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace ltnc {

template <typename T>
class Fenwick {
 public:
  explicit Fenwick(std::size_t size = 0) : tree_(size + 1, T{}) {}

  std::size_t size() const { return tree_.size() - 1; }

  void resize(std::size_t size) { tree_.assign(size + 1, T{}); }

  /// Adds `delta` at 0-based position `index`.
  void add(std::size_t index, T delta) {
    LTNC_DCHECK(index < size());
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of positions [0, index] (0-based, inclusive).
  T prefix_sum(std::size_t index) const {
    if (tree_.size() <= 1) return T{};
    if (index >= size()) index = size() - 1;
    T sum{};
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  T total() const { return size() == 0 ? T{} : prefix_sum(size() - 1); }

  /// Sum over [lo, hi] inclusive, 0-based.
  T range_sum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return T{};
    T high = prefix_sum(hi);
    if (lo == 0) return high;
    return high - prefix_sum(lo - 1);
  }

 private:
  std::vector<T> tree_;
};

}  // namespace ltnc
