#include "common/discrete_distribution.hpp"

#include <numeric>

#include "common/check.hpp"

namespace ltnc {

DiscreteDistribution::DiscreteDistribution(
    const std::vector<double>& weights) {
  LTNC_CHECK_MSG(!weights.empty(), "empty weight vector");
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  LTNC_CHECK_MSG(total > 0.0, "weights must sum to a positive value");

  const std::size_t n = weights.size();
  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    LTNC_CHECK_MSG(weights[i] >= 0.0, "negative weight");
    normalized_[i] = weights[i] / total;
  }

  // Walker/Vose alias construction: partition indices into those whose
  // scaled probability is below/above 1 and pair them up.
  probability_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) probability_[i] = 1.0;
  for (std::size_t i : small) probability_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteDistribution::sample(Rng& rng) const {
  LTNC_DCHECK(!probability_.empty());
  const std::size_t column = rng.uniform(probability_.size());
  return rng.uniform_double() < probability_[column] ? column : alias_[column];
}

}  // namespace ltnc
