// Word-parallel GF(2) kernels — the data-plane substrate.
//
// Every hot loop in the library (code-vector XOR, payload XOR, degree
// popcounts, Gaussian row reduction) bottoms out in one of these
// primitives over raw 64-bit limb arrays. They are written over
// `__restrict` pointers so the compiler can vectorise freely, and the
// dispatched entry points select a SIMD implementation once at startup:
//
//   x86-64   AVX2 (256-bit XOR/AND-NOT, vpshufb nibble-LUT popcount)
//   aarch64  NEON (128-bit, vcnt popcount)
//   anywhere portable fallback (plain word loops, auto-vectorisable)
//
// A separate pinned-scalar instantiation of the portable loops — compiled
// with vectorisation disabled — stays reachable through `scalar_ops()` so
// tests can cross-check the SIMD paths and benchmarks can report honest
// speedups over true word-at-a-time execution. All sizes are in 64-bit
// words; buffers of unequal length or overlapping storage are undefined
// behaviour (callers — BitVector, Payload, the solvers — enforce this).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ltnc::kernels {

/// Dispatch table for the word-parallel primitives. One instance per
/// backend; `ops()` returns the one selected for this CPU.
struct Ops {
  /// dst ^= src, word-wise.
  void (*xor_words)(std::uint64_t* __restrict dst,
                    const std::uint64_t* __restrict src, std::size_t n);
  /// Number of set bits in src[0..n).
  std::size_t (*popcount_words)(const std::uint64_t* src, std::size_t n);
  /// popcount(a ^ b) without materialising the XOR.
  std::size_t (*popcount_xor_words)(const std::uint64_t* __restrict a,
                                    const std::uint64_t* __restrict b,
                                    std::size_t n);
  /// dst &= ~src, word-wise (GF(2) set difference).
  void (*and_not_words)(std::uint64_t* __restrict dst,
                        const std::uint64_t* __restrict src, std::size_t n);
  /// popcount(a & ~b) without materialising the mask.
  std::size_t (*popcount_and_not_words)(const std::uint64_t* __restrict a,
                                        const std::uint64_t* __restrict b,
                                        std::size_t n);
  /// True iff any word in src[0..n) is non-zero.
  bool (*any_words)(const std::uint64_t* src, std::size_t n);
  /// dst ^= srcs[0] ^ srcs[1] ^ ... ^ srcs[nsrcs-1] in a single pass over
  /// dst — the batched row-fold used by back-substitution and the LT
  /// encoder. Each source must have n words and not alias dst.
  void (*xor_accumulate)(std::uint64_t* __restrict dst,
                         const std::uint64_t* const* srcs, std::size_t nsrcs,
                         std::size_t n);
  /// Backend identifier: "avx2", "neon", "portable" or "scalar".
  const char* name;
};

/// The table selected for this CPU (chosen once, on first use).
const Ops& ops();

/// The pinned word-at-a-time reference implementation, always available.
const Ops& scalar_ops();

/// Name of the dispatched backend ("avx2", "neon", "portable").
inline const char* backend_name() { return ops().name; }

// ---------------------------------------------------------------------------
// Convenience wrappers over the dispatched table.
// ---------------------------------------------------------------------------

inline void xor_words(std::uint64_t* __restrict dst,
                      const std::uint64_t* __restrict src, std::size_t n) {
  ops().xor_words(dst, src, n);
}

inline std::size_t popcount_words(const std::uint64_t* src, std::size_t n) {
  return ops().popcount_words(src, n);
}

inline std::size_t popcount_xor_words(const std::uint64_t* __restrict a,
                                      const std::uint64_t* __restrict b,
                                      std::size_t n) {
  return ops().popcount_xor_words(a, b, n);
}

inline void and_not_words(std::uint64_t* __restrict dst,
                          const std::uint64_t* __restrict src, std::size_t n) {
  ops().and_not_words(dst, src, n);
}

inline std::size_t popcount_and_not_words(const std::uint64_t* __restrict a,
                                          const std::uint64_t* __restrict b,
                                          std::size_t n) {
  return ops().popcount_and_not_words(a, b, n);
}

inline bool any_words(const std::uint64_t* src, std::size_t n) {
  return ops().any_words(src, n);
}

inline void xor_accumulate(std::uint64_t* __restrict dst,
                           const std::uint64_t* const* srcs, std::size_t nsrcs,
                           std::size_t n) {
  ops().xor_accumulate(dst, srcs, nsrcs, n);
}

/// Folds `count` sources into dst[0..n), gathering at most 64 source
/// pointers at a time on the stack via `words_of(i)` — the shared batching
/// used by BitVector::xor_accumulate and Payload::xor_accumulate.
template <typename GetWords>
inline void xor_accumulate_batched(std::uint64_t* __restrict dst,
                                   std::size_t n, std::size_t count,
                                   GetWords&& words_of) {
  constexpr std::size_t kMaxBatch = 64;
  const std::uint64_t* rows[kMaxBatch];
  std::size_t done = 0;
  while (done < count) {
    const std::size_t batch = count - done < kMaxBatch ? count - done
                                                       : kMaxBatch;
    for (std::size_t s = 0; s < batch; ++s) rows[s] = words_of(done + s);
    ops().xor_accumulate(dst, rows, batch, n);
    done += batch;
  }
}

}  // namespace ltnc::kernels
