#include "common/payload.hpp"

namespace ltnc {

Payload Payload::deterministic(std::size_t bytes, std::uint64_t seed,
                               std::size_t index) {
  Payload p(bytes);
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  for (auto& w : p.words_) w = sm.next();
  // Mask the tail so equality is well defined for non-multiple-of-8 sizes.
  const std::size_t tail = bytes % 8;
  if (tail != 0 && !p.words_.empty()) {
    p.words_.back() &= (~0ULL >> ((8 - tail) * 8));
  }
  return p;
}

std::size_t Payload::xor_with(const Payload& other) {
  LTNC_CHECK_MSG(bytes_ == other.bytes_, "Payload size mismatch in xor_with");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return words_.size();
}

bool Payload::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

}  // namespace ltnc
