#include "common/payload.hpp"

#include <algorithm>

namespace ltnc {

Payload Payload::deterministic(std::size_t bytes, std::uint64_t seed,
                               std::size_t index) {
  Payload p(bytes);
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  for (std::size_t i = 0; i < p.words_.size(); ++i) p.words_[i] = sm.next();
  // Mask the tail so equality is well defined for non-multiple-of-8 sizes.
  const std::size_t tail = bytes % 8;
  if (tail != 0 && p.words_.size() != 0) {
    p.words_[p.words_.size() - 1] &= (~0ULL >> ((8 - tail) * 8));
  }
  return p;
}

std::size_t Payload::xor_with(const Payload& other) {
  LTNC_CHECK_MSG(bytes_ == other.bytes_, "Payload size mismatch in xor_with");
  kernels::xor_words(words_.data(), other.words_.data(), words_.size());
  return words_.size();
}

std::size_t Payload::xor_accumulate(const Payload* const* sources,
                                    std::size_t count) {
  kernels::xor_accumulate_batched(
      words_.data(), words_.size(), count, [&](std::size_t s) {
        const Payload& src = *sources[s];
        LTNC_CHECK_MSG(src.bytes_ == bytes_,
                       "Payload size mismatch in xor_accumulate");
        return src.words_.data();
      });
  return words_.size() * count;
}

bool Payload::is_zero() const {
  return !kernels::any_words(words_.data(), words_.size());
}

}  // namespace ltnc
