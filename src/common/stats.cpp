#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ltnc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::relative_stddev() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::add(std::size_t bucket) {
  if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
  ++counts_[bucket];
  ++total_;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    acc += static_cast<double>(b) * static_cast<double>(counts_[b]);
  }
  return acc / static_cast<double>(total_);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace ltnc
