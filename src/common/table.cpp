#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace ltnc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LTNC_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LTNC_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::integer(long long value) {
  return std::to_string(value);
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(width[c])) << cells[c] << " |";
    }
    os << '\n';
  };
  os << std::left;
  rule();
  line(headers_);
  rule();
  os << std::right;
  for (const auto& row : rows_) line(row);
  rule();
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ltnc
