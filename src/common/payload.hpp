// Packet payload: an m-byte data block supporting word-parallel XOR.
//
// In the paper the content is divided into k native packets of m bytes
// (m = 256 KB in the evaluation). The dissemination simulator keeps m small
// (payload content does not influence protocol behaviour) while the
// data-plane cost benchmarks (Fig. 8c/8d) use realistic m. XOR work is
// returned to the caller so both planes can be accounted separately.
// Storage is leased from the thread-local WordArena and XOR routes through
// the dispatched SIMD kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"

namespace ltnc {

class Payload {
 public:
  /// Creates an all-zero payload of `bytes` bytes.
  explicit Payload(std::size_t bytes = 0)
      : bytes_(bytes), words_((bytes + 7) / 8) {}

  /// Deterministic pseudo-random payload: the canonical content of native
  /// packet `index` for a run seeded with `seed`. Decoders verify against
  /// this to prove end-to-end correctness.
  static Payload deterministic(std::size_t bytes, std::uint64_t seed,
                               std::size_t index);

  std::size_t size_bytes() const { return bytes_; }
  std::size_t word_count() const { return words_.size(); }

  /// In-place GF(2) addition; returns the number of 64-bit word operations
  /// (data-plane cost accounting).
  std::size_t xor_with(const Payload& other);

  /// In-place GF(2) addition of every payload in `sources` (all the same
  /// size) in a single pass over this payload's words. Returns word ops
  /// charged: one per destination word per source, as if each source had
  /// been XORed individually.
  std::size_t xor_accumulate(const Payload* const* sources,
                             std::size_t count);

  bool operator==(const Payload& other) const {
    return bytes_ == other.bytes_ && words_ == other.words_;
  }
  bool operator!=(const Payload& other) const { return !(*this == other); }

  bool is_zero() const;

  std::uint8_t byte(std::size_t i) const {
    LTNC_DCHECK(i < bytes_);
    return static_cast<std::uint8_t>(words_[i >> 3] >> ((i & 7) * 8));
  }

  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* mutable_words() { return words_.data(); }

  /// Read-only view of the limb words — the zero-copy source for wire
  /// serialization. Bytes past size_bytes() in the last word are always
  /// zero (class invariant; see deterministic()'s tail mask).
  std::span<const std::uint64_t> word_span() const {
    return {words_.data(), words_.size()};
  }

  /// The payload as a byte sequence (little-endian limb image) — exactly
  /// the bytes a wire frame carries. Valid while the payload lives.
  std::span<const std::uint8_t> byte_view() const {
    return {reinterpret_cast<const std::uint8_t*>(words_.data()), bytes_};
  }

 private:
  std::size_t bytes_;
  WordBuf words_;
};

}  // namespace ltnc
