#include "common/arena.hpp"

#include <bit>
#include <new>

#include "common/check.hpp"

namespace ltnc {

namespace {
constexpr std::size_t kBlockAlignment = 64;  // cache line / AVX-512 friendly
}

WordArena::~WordArena() { trim(); }

std::size_t WordArena::class_index(std::size_t words) {
  return std::bit_width(words - 1);  // ceil(log2(words)); words >= 1
}

std::uint64_t* WordArena::lease(std::size_t words) {
  std::uint64_t* ptr = lease_uninitialized(words);
  if (ptr != nullptr) std::memset(ptr, 0, words * 8);
  return ptr;
}

std::uint64_t* WordArena::lease_uninitialized(std::size_t words) {
  if (words == 0) return nullptr;
  ++stats_.leases;
  stats_.live_words += words;
  const std::size_t cls = class_index(words);
  if (cls < free_lists_.size() && !free_lists_[cls].empty()) {
    std::uint64_t* ptr = free_lists_[cls].back();
    free_lists_[cls].pop_back();
    ++stats_.recycled_blocks;
    return ptr;
  }
  ++stats_.fresh_blocks;
  return static_cast<std::uint64_t*>(::operator new(
      class_words(cls) * 8, std::align_val_t{kBlockAlignment}));
}

void WordArena::release(std::uint64_t* ptr, std::size_t words) {
  if (ptr == nullptr) return;
  LTNC_DCHECK(words != 0);
  ++stats_.releases;
  stats_.live_words -= words;
  const std::size_t cls = class_index(words);
  if (free_lists_.size() <= cls) free_lists_.resize(cls + 1);
  free_lists_[cls].push_back(ptr);
}

void WordArena::trim() {
  for (auto& list : free_lists_) {
    for (std::uint64_t* ptr : list) {
      ::operator delete(ptr, std::align_val_t{kBlockAlignment});
    }
    list.clear();
  }
}

namespace {
// Constant-initialized TLS slot (no guard variable on the hot path).
// Leaked on purpose for the main thread: BitVector/Payload statics may
// release during exit teardown, after a normally-destroyed thread_local
// would be gone. Worker threads opt into cleanup via reclaim_local().
thread_local WordArena* tls_arena = nullptr;
}  // namespace

WordArena& WordArena::local() {
  if (tls_arena == nullptr) tls_arena = new WordArena;
  return *tls_arena;
}

void WordArena::reclaim_local() {
  delete tls_arena;  // ~WordArena trims the free lists
  tls_arena = nullptr;
}

}  // namespace ltnc
