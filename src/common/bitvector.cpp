#include "common/bitvector.hpp"

#include <bit>
#include <sstream>

namespace ltnc {

std::size_t BitVector::xor_with(const BitVector& other) {
  LTNC_CHECK_MSG(bits_ == other.bits_, "BitVector size mismatch in xor_with");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return words_.size();
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVector::popcount_xor(const BitVector& other) const {
  LTNC_CHECK_MSG(bits_ == other.bits_,
                 "BitVector size mismatch in popcount_xor");
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

std::size_t BitVector::subtract(const BitVector& other) {
  LTNC_CHECK_MSG(bits_ == other.bits_, "BitVector size mismatch in subtract");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  return words_.size();
}

std::size_t BitVector::popcount_and_not(const BitVector& other) const {
  LTNC_CHECK_MSG(bits_ == other.bits_,
                 "BitVector size mismatch in popcount_and_not");
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & ~other.words_[i]));
  }
  return n;
}

bool BitVector::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t BitVector::first_set() const { return next_set(0); }

std::size_t BitVector::next_set(std::size_t from) const {
  if (from >= bits_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
    }
    if (++w == words_.size()) return npos;
    word = words_[w];
  }
}

std::vector<std::size_t> BitVector::indices() const {
  std::vector<std::size_t> out;
  out.reserve(8);
  for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::uint64_t BitVector::hash() const {
  // FNV-1a over words, finished with a splitmix-style avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

std::string BitVector::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each_set([&](std::size_t i) {
    if (!first) os << ',';
    os << i;
    first = false;
  });
  os << '}';
  return os.str();
}

}  // namespace ltnc
