#include "common/bitvector.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace ltnc {

std::size_t BitVector::xor_with(const BitVector& other) {
  LTNC_CHECK_MSG(bits_ == other.bits_, "BitVector size mismatch in xor_with");
  kernels::xor_words(words_.data(), other.words_.data(), words_.size());
  return words_.size();
}

std::size_t BitVector::xor_accumulate(const BitVector* const* sources,
                                      std::size_t count) {
  kernels::xor_accumulate_batched(
      words_.data(), words_.size(), count, [&](std::size_t s) {
        const BitVector& src = *sources[s];
        LTNC_CHECK_MSG(src.bits_ == bits_,
                       "BitVector size mismatch in xor_accumulate");
        return src.words_.data();
      });
  return words_.size() * count;
}

std::size_t BitVector::popcount() const {
  return kernels::popcount_words(words_.data(), words_.size());
}

std::size_t BitVector::popcount_xor(const BitVector& other) const {
  LTNC_CHECK_MSG(bits_ == other.bits_,
                 "BitVector size mismatch in popcount_xor");
  return kernels::popcount_xor_words(words_.data(), other.words_.data(),
                                     words_.size());
}

std::size_t BitVector::subtract(const BitVector& other) {
  LTNC_CHECK_MSG(bits_ == other.bits_, "BitVector size mismatch in subtract");
  kernels::and_not_words(words_.data(), other.words_.data(), words_.size());
  return words_.size();
}

std::size_t BitVector::popcount_and_not(const BitVector& other) const {
  LTNC_CHECK_MSG(bits_ == other.bits_,
                 "BitVector size mismatch in popcount_and_not");
  return kernels::popcount_and_not_words(words_.data(), other.words_.data(),
                                         words_.size());
}

bool BitVector::any() const {
  return kernels::any_words(words_.data(), words_.size());
}

std::size_t BitVector::first_set() const { return next_set(0); }

std::size_t BitVector::next_set(std::size_t from) const {
  if (from >= bits_) return npos;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
    }
    if (++w == words_.size()) return npos;
    word = words_[w];
  }
}

std::vector<std::size_t> BitVector::indices() const {
  std::vector<std::size_t> out;
  out.reserve(8);
  for_each_set([&](std::size_t i) { out.push_back(i); });
  return out;
}

std::uint64_t BitVector::hash() const {
  // FNV-1a over words, finished with a splitmix-style avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    h ^= words_[i];
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

std::string BitVector::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for_each_set([&](std::size_t i) {
    if (!first) os << ',';
    os << i;
    first = false;
  });
  os << '}';
  return os.str();
}

}  // namespace ltnc
