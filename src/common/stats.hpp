// Streaming statistics used by the evaluation harness.
//
// RunningStats implements Welford's online algorithm; Histogram buckets
// integer observations (e.g. packet degrees). Both are cheap enough to be
// left enabled inside the codecs, which is how the paper's in-text
// statistics (degree-retry rate, occurrence variance, …) are collected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ltnc {

class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  /// stddev / mean — the paper's "relative standard deviation" (§III-B.3).
  double relative_stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  void merge(const RunningStats& other);
  void reset() { *this = RunningStats(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 0) : counts_(buckets, 0) {}

  void add(std::size_t bucket);

  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const {
    return bucket < counts_.size() ? counts_[bucket] : 0;
  }
  std::uint64_t total() const { return total_; }
  double fraction(std::size_t bucket) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(bucket)) /
                             static_cast<double>(total_);
  }
  double mean() const;

  void reset();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ltnc
