// Aligned text tables for benchmark output.
//
// Every figure/table bench prints its series through TextTable so the rows
// the paper reports can be regenerated (and optionally exported as CSV for
// plotting).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ltnc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row; cells are preformatted strings.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  static std::string integer(long long value);

  /// Writes an aligned, boxed table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (no quoting beyond commas, which we forbid).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ltnc
