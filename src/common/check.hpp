// Assertion helpers for the LTNC library.
//
// LTNC_CHECK   — always-on precondition check; throws std::logic_error so
//                API misuse is detected in release builds too (per C++ Core
//                Guidelines I.5/I.6 the library states its preconditions).
// LTNC_DCHECK  — debug-only invariant check for hot paths; compiles to
//                nothing when NDEBUG is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace ltnc::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw std::logic_error(std::string("LTNC_CHECK failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace ltnc::detail

#define LTNC_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::ltnc::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define LTNC_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::ltnc::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define LTNC_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define LTNC_DCHECK(expr) LTNC_CHECK(expr)
#endif
