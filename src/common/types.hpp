// Shared index types.
#pragma once

#include <cstdint>

namespace ltnc {

/// Index of a native packet, 0 ≤ NativeIndex < k.
using NativeIndex = std::uint32_t;

/// Handle to a stored encoded packet inside a node's packet store.
using PacketId = std::uint32_t;

inline constexpr PacketId kInvalidPacket = static_cast<PacketId>(-1);

/// Identifier of a node in the dissemination network.
using NodeId = std::uint32_t;

/// Identifier of a content (a k×m block set) multiplexed over one session
/// endpoint. Travels as a varint on v2 wire frames; id 0 is the implicit
/// default content of single-content sessions and costs zero wire bytes.
/// Caller-assigned, or derived from the content's dimensions and seed via
/// store::derive_content_id (which keeps ids ≤ 2 varint bytes).
using ContentId = std::uint64_t;

}  // namespace ltnc
