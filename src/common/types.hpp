// Shared index types.
#pragma once

#include <cstdint>

namespace ltnc {

/// Index of a native packet, 0 ≤ NativeIndex < k.
using NativeIndex = std::uint32_t;

/// Handle to a stored encoded packet inside a node's packet store.
using PacketId = std::uint32_t;

inline constexpr PacketId kInvalidPacket = static_cast<PacketId>(-1);

/// Identifier of a node in the dissemination network.
using NodeId = std::uint32_t;

}  // namespace ltnc
