// WordArena — recycling limb-storage pool for the packet data plane.
//
// Every BitVector and Payload leases its 64-bit limb array from an arena
// instead of owning a heap allocation. Freed arrays go onto per-size-class
// free lists and are handed back on the next lease, so the encode / recode
// / decode loops — which create and destroy packets at a furious rate but
// over a tiny set of distinct sizes (k-bit code vectors, m-byte payloads)
// — run allocation-free at steady state. Blocks are 64-byte aligned for
// the SIMD kernels and zero-filled on lease.
//
// The default arena is thread-local; the main thread's instance is
// intentionally leaked at process exit (static-destruction-order safety:
// a static-duration BitVector may release after the arena's natural
// destruction point). The library is single-threaded per *node*: one
// endpoint's coding state always lives on one thread. Buffers may still
// cross threads by ownership transfer (the SPSC frame rings swap whole
// WordBuf leases between an I/O thread and a shard worker); a buffer
// released on a thread other than the one that leased it simply lands in
// that thread's free lists — the block memory is plain aligned operator
// new, so recycling and freeing it anywhere is safe. Only the per-arena
// Stats become a *local* view then: lease/release balance holds summed
// across the participating threads, not per thread (the threaded tests
// assert exactly that). Worker threads that touched the arena should call
// WordArena::reclaim_local() before exiting so their cached blocks (and
// the arena object itself) are freed rather than leaked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace ltnc {

class WordArena {
 public:
  struct Stats {
    std::uint64_t leases = 0;        ///< total lease calls
    std::uint64_t releases = 0;      ///< total release calls
    std::uint64_t fresh_blocks = 0;  ///< leases served by a new heap block
    std::uint64_t recycled_blocks = 0;  ///< leases served from a free list
    std::uint64_t live_words = 0;    ///< words currently leased out
  };

  WordArena() = default;
  ~WordArena();

  WordArena(const WordArena&) = delete;
  WordArena& operator=(const WordArena&) = delete;

  /// Leases a zero-filled array of at least `words` limbs (64-byte
  /// aligned). Returns nullptr for words == 0.
  std::uint64_t* lease(std::size_t words);

  /// Leases without the zero-fill — for callers that overwrite the whole
  /// array immediately (copies). Same recycling behaviour as lease().
  std::uint64_t* lease_uninitialized(std::size_t words);

  /// Returns an array obtained from lease()/lease_uninitialized() with the
  /// same `words` it was leased with.
  void release(std::uint64_t* ptr, std::size_t words);

  /// Frees every cached block. Outstanding leases stay valid.
  void trim();

  const Stats& stats() const { return stats_; }

  /// The calling thread's default arena (the main thread's is never
  /// destroyed — see header comment). All BitVector/Payload storage flows
  /// through this.
  static WordArena& local();

  /// Destroys the calling thread's default arena, freeing every cached
  /// block — worker-thread exit hygiene, so short-lived shard threads do
  /// not leak their recycling caches (the leak checker would flag them
  /// once the thread's TLS is gone). Every object holding a lease from
  /// this thread must be gone or already transferred to another thread;
  /// a later local() call on this thread starts a fresh arena. The main
  /// thread must not call this (its arena outlives static destructors on
  /// purpose).
  static void reclaim_local();

 private:
  /// Free-list index: words are rounded up to the next power of two so a
  /// released block can serve any lease of the same class.
  static std::size_t class_index(std::size_t words);
  static std::size_t class_words(std::size_t cls) {
    return std::size_t{1} << cls;
  }

  std::vector<std::vector<std::uint64_t*>> free_lists_;
  Stats stats_;
};

/// A leased limb array: the storage type under BitVector and Payload.
/// Move transfers the lease; copy takes a fresh lease and memcpys. The
/// logical word count is fixed at construction.
class WordBuf {
 public:
  WordBuf() = default;

  /// Leases `words` zero-filled limbs from the thread-local arena.
  explicit WordBuf(std::size_t words)
      : ptr_(WordArena::local().lease(words)), words_(words) {}

  WordBuf(const WordBuf& other)
      : ptr_(WordArena::local().lease_uninitialized(other.words_)),
        words_(other.words_) {
    if (words_ != 0) std::memcpy(ptr_, other.ptr_, words_ * 8);
  }

  WordBuf(WordBuf&& other) noexcept : ptr_(other.ptr_), words_(other.words_) {
    other.ptr_ = nullptr;
    other.words_ = 0;
  }

  WordBuf& operator=(const WordBuf& other) {
    if (this == &other) return *this;
    if (words_ != other.words_) {
      // Lease before release: if the lease throws, this buffer is
      // untouched and the old block is not double-listed.
      WordArena& arena = WordArena::local();
      std::uint64_t* fresh = arena.lease_uninitialized(other.words_);
      arena.release(ptr_, words_);
      ptr_ = fresh;
      words_ = other.words_;
    }
    if (words_ != 0) std::memcpy(ptr_, other.ptr_, words_ * 8);
    return *this;
  }

  WordBuf& operator=(WordBuf&& other) noexcept {
    if (this == &other) return *this;
    WordArena::local().release(ptr_, words_);
    ptr_ = other.ptr_;
    words_ = other.words_;
    other.ptr_ = nullptr;
    other.words_ = 0;
    return *this;
  }

  ~WordBuf() { WordArena::local().release(ptr_, words_); }

  std::size_t size() const { return words_; }
  std::uint64_t* data() { return ptr_; }
  const std::uint64_t* data() const { return ptr_; }

  std::uint64_t& operator[](std::size_t i) { return ptr_[i]; }
  const std::uint64_t& operator[](std::size_t i) const { return ptr_[i]; }

  void fill_zero() {
    if (words_ != 0) std::memset(ptr_, 0, words_ * 8);
  }

  bool operator==(const WordBuf& other) const {
    return words_ == other.words_ &&
           (words_ == 0 || std::memcmp(ptr_, other.ptr_, words_ * 8) == 0);
  }
  bool operator!=(const WordBuf& other) const { return !(*this == other); }

 private:
  std::uint64_t* ptr_ = nullptr;
  std::size_t words_ = 0;
};

}  // namespace ltnc
