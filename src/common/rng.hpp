// Deterministic pseudo-random number generation for simulations.
//
// All randomness in the library flows through Rng (xoshiro256**), seeded
// via SplitMix64 so that a single 64-bit seed reproduces an entire
// experiment. The generator satisfies std::uniform_random_bit_generator,
// so it can also drive <random> distributions where convenient.
#pragma once

#include <cstdint>
#include <limits>

#include "common/check.hpp"

namespace ltnc {

/// SplitMix64: tiny seeding generator (Vigna). Used to expand one 64-bit
/// seed into the 256-bit xoshiro state and to derive independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1d2c3b4a59687706ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform(std::uint64_t bound) {
    LTNC_DCHECK(bound > 0);
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform_double() < p; }

  /// Derives an independent child generator (for per-node streams).
  Rng fork() { return Rng(next()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ltnc
