// CodedPacket: an encoded packet as transmitted on the wire.
//
// Following the paper (§II), an encoded packet is a GF(2) linear
// combination of native packets; the code vector (a k-bit bitmap) travels
// in the packet header and the m-byte payload follows. The degree of a
// packet is the popcount of its code vector.
#pragma once

#include <cstddef>
#include <utility>

#include "common/bitvector.hpp"
#include "common/payload.hpp"

namespace ltnc {

struct CodedPacket {
  BitVector coeffs;  ///< code vector over the k native packets
  Payload payload;   ///< XOR of the referenced native payloads

  CodedPacket() = default;
  CodedPacket(BitVector c, Payload p)
      : coeffs(std::move(c)), payload(std::move(p)) {}

  /// Builds the degree-1 packet carrying native packet `index`.
  static CodedPacket native(std::size_t k, std::size_t index, Payload p) {
    return CodedPacket(BitVector::unit(k, index), std::move(p));
  }

  std::size_t degree() const { return coeffs.popcount(); }
  std::size_t code_length() const { return coeffs.size(); }

  /// GF(2) addition of another packet; returns {control word-ops, data
  /// word-ops} so the two planes can be charged separately.
  std::pair<std::size_t, std::size_t> xor_with(const CodedPacket& other) {
    const std::size_t control = coeffs.xor_with(other.coeffs);
    const std::size_t data = payload.xor_with(other.payload);
    return {control, data};
  }

  /// Wire size in bytes: the exact serialized frame size of this packet
  /// under the versioned codec (wire/codec.hpp), including the frame
  /// header and the adaptive dense/sparse code-vector encoding — computed
  /// by the codec itself so the estimate and the wire can never drift.
  std::size_t wire_bytes() const;
};

}  // namespace ltnc
