// Discrete sampling via Walker's alias method.
//
// LT codes draw one degree per encoded packet from the Robust Soliton
// distribution; the alias method makes that O(1) per sample after O(n)
// preprocessing, which matters because LTNC re-draws on every recode (and
// retries when a degree is classified unreachable).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace ltnc {

class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  /// Builds the sampler from (unnormalised, non-negative) weights.
  /// At least one weight must be positive.
  explicit DiscreteDistribution(const std::vector<double>& weights);

  /// Samples an index in [0, size()) proportionally to its weight.
  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return probability_.size(); }
  bool empty() const { return probability_.empty(); }

  /// Normalised probability of index i (for tests and for printing Fig. 2).
  double probability_of(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> probability_;  ///< alias-table acceptance thresholds
  std::vector<std::size_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace ltnc
