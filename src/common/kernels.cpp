#include "common/kernels.hpp"

#include <bit>

// The AVX2 backend relies on GCC/Clang per-function target attributes and
// __builtin_cpu_supports, so it is gated on those compilers (MSVC would
// need /arch plumbing instead and falls back to scalar).
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LTNC_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define LTNC_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace ltnc::kernels {
namespace {

// ---------------------------------------------------------------------------
// Generic word-loop tiers, instantiated twice from kernels_generic.inc:
//
//   portable       — the runtime fallback when no SIMD backend matches.
//                    The compiler is free to auto-vectorise it to the
//                    baseline ISA (SSE2 on x86-64), so non-AVX2 hosts are
//                    not pessimised.
//   pinned_scalar  — compiled with vectorisation disabled: the genuine
//                    word-at-a-time reference the fuzz tests compare the
//                    SIMD paths against and the benchmarks report
//                    speedups over. Never dispatched at runtime.
// ---------------------------------------------------------------------------

// GCC pins via the push_options block below; Clang needs a per-loop
// pragma, threaded through the LTNC_NOVEC hook in kernels_generic.inc.
#if defined(__clang__)
#define LTNC_SCALAR_NOVEC \
  _Pragma("clang loop vectorize(disable) interleave(disable)")
#else
#define LTNC_SCALAR_NOVEC
#endif

namespace portable {
#define LTNC_NOVEC
#include "common/kernels_generic.inc"
#undef LTNC_NOVEC
}  // namespace portable

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC push_options
#pragma GCC optimize("no-tree-vectorize", "no-tree-slp-vectorize")
#endif
namespace pinned_scalar {
#define LTNC_NOVEC LTNC_SCALAR_NOVEC
#include "common/kernels_generic.inc"
#undef LTNC_NOVEC
}  // namespace pinned_scalar
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC pop_options
#endif

constexpr Ops kPortableOps = {
    portable::xor_words,     portable::popcount_words,
    portable::popcount_xor_words,
    portable::and_not_words, portable::popcount_and_not_words,
    portable::any_words,     portable::xor_accumulate, "portable",
};

constexpr Ops kScalarOps = {
    pinned_scalar::xor_words,     pinned_scalar::popcount_words,
    pinned_scalar::popcount_xor_words,
    pinned_scalar::and_not_words, pinned_scalar::popcount_and_not_words,
    pinned_scalar::any_words,     pinned_scalar::xor_accumulate, "scalar",
};

#if defined(LTNC_KERNELS_X86)

// ---------------------------------------------------------------------------
// AVX2 backend. Compiled with per-function target attributes so the binary
// stays runnable on baseline x86-64; ops() only selects these when the CPU
// reports AVX2 at runtime.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void avx2_xor_words(
    std::uint64_t* __restrict dst, const std::uint64_t* __restrict src,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    const __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 4));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), _mm256_xor_si256(d1, s1));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

/// Per-byte popcount of a 256-bit lane via the nibble lookup (Mula's
/// vpshufb method), horizontally summed into four 64-bit lanes.
__attribute__((target("avx2"), always_inline)) inline __m256i avx2_popcount256(
    __m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"), always_inline)) inline std::size_t
avx2_reduce_u64(__m256i acc) {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) std::size_t avx2_popcount_words(
    const std::uint64_t* src, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    acc = _mm256_add_epi64(acc, avx2_popcount256(v));
  }
  std::size_t count = avx2_reduce_u64(acc);
  for (; i < n; ++i) count += static_cast<std::size_t>(std::popcount(src[i]));
  return count;
}

__attribute__((target("avx2"))) std::size_t avx2_popcount_xor_words(
    const std::uint64_t* __restrict a, const std::uint64_t* __restrict b,
    std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, avx2_popcount256(_mm256_xor_si256(va, vb)));
  }
  std::size_t count = avx2_reduce_u64(acc);
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

__attribute__((target("avx2"))) void avx2_and_not_words(
    std::uint64_t* __restrict dst, const std::uint64_t* __restrict src,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // _mm256_andnot_si256(s, d) computes (~s) & d.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) std::size_t avx2_popcount_and_not_words(
    const std::uint64_t* __restrict a, const std::uint64_t* __restrict b,
    std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, avx2_popcount256(_mm256_andnot_si256(vb, va)));
  }
  std::size_t count = avx2_reduce_u64(acc);
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & ~b[i]));
  }
  return count;
}

__attribute__((target("avx2"))) bool avx2_any_words(const std::uint64_t* src,
                                                    std::size_t n) {
  // Block-wise early exit: a non-zero vector is usually detected in the
  // first block, while the all-zero worst case still scans at full width.
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i) {
    if (src[i] != 0) return true;
  }
  return false;
}

__attribute__((target("avx2"))) void avx2_xor_accumulate(
    std::uint64_t* __restrict dst, const std::uint64_t* const* srcs,
    std::size_t nsrcs, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 4));
    for (std::size_t s = 0; s < nsrcs; ++s) {
      const std::uint64_t* row = srcs[s];
      d0 = _mm256_xor_si256(d0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i)));
      d1 = _mm256_xor_si256(d1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i + 4)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 4), d1);
  }
  for (; i < n; ++i) {
    std::uint64_t w = dst[i];
    for (std::size_t s = 0; s < nsrcs; ++s) w ^= srcs[s][i];
    dst[i] = w;
  }
}

constexpr Ops kAvx2Ops = {
    avx2_xor_words,     avx2_popcount_words, avx2_popcount_xor_words,
    avx2_and_not_words, avx2_popcount_and_not_words,
    avx2_any_words,     avx2_xor_accumulate, "avx2",
};

#endif  // LTNC_KERNELS_X86

#if defined(LTNC_KERNELS_NEON)

// ---------------------------------------------------------------------------
// NEON backend. NEON is baseline on aarch64, so no target attributes or
// runtime probe are needed.
// ---------------------------------------------------------------------------

void neon_xor_words(std::uint64_t* __restrict dst,
                    const std::uint64_t* __restrict src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
    vst1q_u64(dst + i + 2,
              veorq_u64(vld1q_u64(dst + i + 2), vld1q_u64(src + i + 2)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

inline std::uint64_t neon_popcount128(uint64x2_t v) {
  const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(counts);
}

std::size_t neon_popcount_words(const std::uint64_t* src, std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) count += neon_popcount128(vld1q_u64(src + i));
  for (; i < n; ++i) count += static_cast<std::size_t>(std::popcount(src[i]));
  return count;
}

std::size_t neon_popcount_xor_words(const std::uint64_t* __restrict a,
                                    const std::uint64_t* __restrict b,
                                    std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    count += neon_popcount128(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return count;
}

void neon_and_not_words(std::uint64_t* __restrict dst,
                        const std::uint64_t* __restrict src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

std::size_t neon_popcount_and_not_words(const std::uint64_t* __restrict a,
                                        const std::uint64_t* __restrict b,
                                        std::size_t n) {
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    count += neon_popcount128(vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) {
    count += static_cast<std::size_t>(std::popcount(a[i] & ~b[i]));
  }
  return count;
}

bool neon_any_words(const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(src + i);
    if ((vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) != 0) return true;
  }
  for (; i < n; ++i) {
    if (src[i] != 0) return true;
  }
  return false;
}

void neon_xor_accumulate(std::uint64_t* __restrict dst,
                         const std::uint64_t* const* srcs, std::size_t nsrcs,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64x2_t d0 = vld1q_u64(dst + i);
    uint64x2_t d1 = vld1q_u64(dst + i + 2);
    for (std::size_t s = 0; s < nsrcs; ++s) {
      const std::uint64_t* row = srcs[s];
      d0 = veorq_u64(d0, vld1q_u64(row + i));
      d1 = veorq_u64(d1, vld1q_u64(row + i + 2));
    }
    vst1q_u64(dst + i, d0);
    vst1q_u64(dst + i + 2, d1);
  }
  for (; i < n; ++i) {
    std::uint64_t w = dst[i];
    for (std::size_t s = 0; s < nsrcs; ++s) w ^= srcs[s][i];
    dst[i] = w;
  }
}

constexpr Ops kNeonOps = {
    neon_xor_words,     neon_popcount_words, neon_popcount_xor_words,
    neon_and_not_words, neon_popcount_and_not_words,
    neon_any_words,     neon_xor_accumulate, "neon",
};

#endif  // LTNC_KERNELS_NEON

const Ops& select_backend() {
#if defined(LTNC_KERNELS_X86)
  if (__builtin_cpu_supports("avx2")) return kAvx2Ops;
#elif defined(LTNC_KERNELS_NEON)
  return kNeonOps;
#endif
  return kPortableOps;
}

}  // namespace

const Ops& ops() {
  static const Ops& selected = select_backend();
  return selected;
}

const Ops& scalar_ops() { return kScalarOps; }

}  // namespace ltnc::kernels
