// Dense bit vector over GF(2).
//
// BitVector is the code-vector representation used throughout the library:
// an encoded packet's coefficients over the k native packets. The hot
// operations — XOR, popcount, popcount-of-XOR — route through the
// runtime-dispatched SIMD kernels in common/kernels.hpp, matching the
// paper's observation that linear coding over GF(2) "consists only in xor
// operations". Limb storage is leased from the thread-local WordArena so
// packet churn does not hit the allocator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/kernels.hpp"

namespace ltnc {

class BitVector {
 public:
  /// Creates an all-zero vector of `bits` bits.
  explicit BitVector(std::size_t bits = 0)
      : bits_(bits), words_((bits + 63) / 64) {}

  /// Creates a vector of `bits` bits with exactly one bit set.
  static BitVector unit(std::size_t bits, std::size_t index) {
    BitVector v(bits);
    v.set(index);
    return v;
  }

  /// Creates a vector from a list of set-bit indices.
  static BitVector from_indices(std::size_t bits,
                                const std::vector<std::size_t>& indices) {
    BitVector v(bits);
    for (std::size_t i : indices) v.set(i);
    return v;
  }

  std::size_t size() const { return bits_; }
  std::size_t word_count() const { return words_.size(); }

  bool test(std::size_t i) const {
    LTNC_DCHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value = true) {
    LTNC_DCHECK(i < bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void flip(std::size_t i) {
    LTNC_DCHECK(i < bits_);
    words_[i >> 6] ^= 1ULL << (i & 63);
  }

  void clear() { words_.fill_zero(); }

  /// Copies the contents of `other` (same size) without reallocating —
  /// scratch-row reuse in the solvers.
  void copy_from(const BitVector& other) {
    LTNC_DCHECK(bits_ == other.bits_);
    words_ = other.words_;
  }

  /// In-place GF(2) addition. Both operands must have the same size.
  /// Returns the number of 64-bit word operations performed (for cost
  /// accounting in the control-plane benchmarks).
  std::size_t xor_with(const BitVector& other);

  /// In-place GF(2) addition of every vector in `sources` (all the same
  /// size) in one pass over this vector's words. Returns word ops charged
  /// as if each source had been XORed individually.
  std::size_t xor_accumulate(const BitVector* const* sources,
                             std::size_t count);

  BitVector operator^(const BitVector& other) const {
    BitVector r = *this;
    r.xor_with(other);
    return r;
  }

  /// Number of set bits — the packet's degree.
  std::size_t popcount() const;

  /// popcount(*this ^ other) without materialising the XOR. This is the
  /// degree a packet would have after combining — used by Algorithm 1 to
  /// test candidate combinations without allocation.
  std::size_t popcount_xor(const BitVector& other) const;

  /// In-place set difference: clears every bit that is set in `other`
  /// (this &= ~other). Used to strip decoded natives from an incoming code
  /// vector. Returns word operations performed.
  std::size_t subtract(const BitVector& other);

  /// popcount(*this & ~other): the degree an incoming vector would have
  /// after the decoded natives in `other` are stripped (feedback-channel
  /// evaluation without materialising a copy).
  std::size_t popcount_and_not(const BitVector& other) const;

  bool any() const;
  bool none() const { return !any(); }

  /// Index of the lowest set bit, or npos if none.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t first_set() const;

  /// Index of the lowest set bit at position >= from, or npos.
  std::size_t next_set(std::size_t from) const;

  /// Invokes fn(index) for every set bit, in increasing index order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Returns the indices of all set bits.
  std::vector<std::size_t> indices() const;

  bool operator==(const BitVector& other) const {
    return bits_ == other.bits_ && words_ == other.words_;
  }
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// 64-bit mixing hash over the words (for hash-set membership of
  /// low-degree packets in the redundancy detector).
  std::uint64_t hash() const;

  /// "{0,3,7}" style debug representation.
  std::string to_string() const;

  const std::uint64_t* words() const { return words_.data(); }

  /// Read-only view of the limb words — the zero-copy source for wire
  /// serialization. Bits past size() in the last word are always zero
  /// (class invariant).
  std::span<const std::uint64_t> word_span() const {
    return {words_.data(), words_.size()};
  }

  /// Mutable limb access for deserialization fast paths. Callers must
  /// preserve the zero-tail invariant: bits past size() stay clear
  /// (popcount and the XOR kernels rely on it).
  std::uint64_t* mutable_words() { return words_.data(); }

 private:
  std::size_t bits_;
  WordBuf words_;
};

struct BitVectorHash {
  std::size_t operator()(const BitVector& v) const {
    return static_cast<std::size_t>(v.hash());
  }
};

}  // namespace ltnc
