// stream::Receiver — the deadline-scored decoding side of a live stream.
//
// Wraps a session::Endpoint whose ContentStore holds one LtSinkProtocol
// per live block, sliding in lockstep with the source's window:
//
//   open_block(seq, birth)   register block seq; its deadline starts
//   ingest(peer, bytes, now) feed one raw datagram; on the delivery that
//                            completes a block before its deadline, the
//                            decoded natives are verified and the
//                            completion latency (now − birth) recorded
//   finalize_due(now)        every block whose deadline passed resolves
//                            to exactly one outcome — completed (already
//                            recorded) or missed — and its content is
//                            expired, so later symbols for it count as
//                            expired_frames in SessionStats, not foreign
//
// Latency, miss and goodput measurements flow into PR-8 telemetry
// instruments (Histogram / Counter); instruments may be shared across a
// receiver fleet — they are atomic — and any pointer may stay null.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "session/endpoint.hpp"
#include "stream/stream_source.hpp"
#include "telemetry/metrics.hpp"

namespace ltnc::stream {

struct ReceiverInstruments {
  telemetry::Histogram* latency = nullptr;  ///< completion, birth→decode
  telemetry::Counter* completed = nullptr;
  telemetry::Counter* misses = nullptr;
  telemetry::Counter* goodput_bytes = nullptr;
};

struct ReceiverStats {
  std::uint64_t blocks_opened = 0;
  std::uint64_t blocks_completed = 0;  ///< decoded + verified in time
  std::uint64_t deadline_misses = 0;
  std::uint64_t verify_failures = 0;  ///< decoded but wrong bytes (counted
                                      ///< as misses, never as completions)
  std::uint64_t goodput_bytes = 0;    ///< bytes of blocks completed in time
  std::uint64_t blocks_finalized = 0;
};

class Receiver {
 public:
  /// `config` mirrors the source's stream shape (k, symbol size,
  /// deadline, verification seed). `endpoint_config`'s feedback mode is
  /// the stream's choice (kNone for pure push); its k/payload fields are
  /// ignored — blocks carry their own dimensions.
  Receiver(const StreamConfig& config,
           const session::EndpointConfig& endpoint_config,
           const ReceiverInstruments& instruments = {});

  /// Opens block `seq`'s decode window (idempotent). Blocks the schedule
  /// says exist must be opened even if every symbol of them is lost —
  /// that is exactly the case the miss counter must see.
  void open_block(std::uint64_t seq, Instant birth);

  /// Feeds one raw datagram. Completion checks run only on delivery
  /// events, and a block completes at most once.
  session::Endpoint::Event ingest(session::PeerId peer,
                                  std::span<const std::uint8_t> bytes,
                                  Instant now);

  /// Resolves every open block whose deadline has passed: missed unless
  /// already completed; either way the content is expired from the
  /// endpoint (the receiver side of the sliding window).
  void finalize_due(Instant now);
  /// Event-engine variant: resolve exactly block `seq` (no-op when the
  /// block was never opened or already finalized).
  void finalize_block(std::uint64_t seq, Instant now);

  session::Endpoint& endpoint() { return ep_; }
  const session::Endpoint& endpoint() const { return ep_; }
  const ReceiverStats& stream_stats() const { return stats_; }
  std::size_t open_blocks() const { return live_.size(); }
  bool all_finalized() const {
    return cfg_.total_blocks != 0 &&
           stats_.blocks_finalized >= cfg_.total_blocks;
  }

 private:
  struct Block {
    std::uint64_t seq = 0;
    Instant birth = 0;
    Instant deadline = 0;
    bool completed = false;
  };

  Block* find(std::uint64_t seq);
  void complete_block(Block& block, Instant now);
  void finalize_at(std::size_t index, Instant now);

  StreamConfig cfg_;
  session::Endpoint ep_;
  ReceiverInstruments inst_;
  ReceiverStats stats_;
  std::vector<Block> live_;  ///< open order (front = oldest)
};

}  // namespace ltnc::stream
