// DeadlinePolicy — earliest-deadline-first push scheduling for streams.
//
// The swarm scheduler's rarest-first heuristic optimises long-run
// availability; a live stream instead has a hard wall per block: a frame
// that arrives after its block's deadline is worthless. This policy plugs
// into store::SwarmScheduler (see PushPolicy) and reorders every push
// decision of the owning endpoint:
//
//   1. overdue blocks never win — once now > deadline, pushing is wasted
//      work; the StreamSource expires the content shortly after (the
//      deadline-miss drop path),
//   2. among live blocks, earliest deadline first — the block closest to
//      its wall is always the most urgent,
//   3. equal deadlines fall back to rarest-first (fill_fraction), then to
//      the scheduler's round-robin cursor — the default discipline,
//      nested inside EDF instead of replaced by it,
//   4. per-block redundancy budgets bound how many pushes one block may
//      consume, so a hopeless near-deadline block cannot starve blocks
//      whose deadlines are farther out.
//
// Contents the policy has never heard of (no track() call) behave as if
// their deadline were infinitely far: they lose to every tracked block
// and keep plain rarest-first among themselves — an endpoint can mix
// streaming and bulk contents on one scheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "store/swarm_scheduler.hpp"

namespace ltnc::stream {

/// Stream time: the session Endpoint's abstract Instant (ticks, µs — the
/// harness's choice, as long as one domain is used consistently).
using Instant = std::uint64_t;

class DeadlinePolicy final : public store::PushPolicy {
 public:
  /// Starts tracking a block: pushes for `id` are admissible until
  /// `deadline` and capped at `budget` (0 = uncapped). Re-tracking an id
  /// resets its state.
  void track(ContentId id, Instant deadline, std::uint32_t budget);
  /// Budget re-scaling as slack shrinks or the loss estimate moves; the
  /// pushed-so-far count is preserved.
  void set_budget(ContentId id, std::uint32_t budget);
  void untrack(ContentId id);
  /// Advances the policy's clock — overdue blocks stop winning picks.
  void set_now(Instant now) { now_ = now; }
  /// Charges one push against `id`'s budget (no-op for untracked ids).
  void on_push(ContentId id);

  bool tracked(ContentId id) const { return find(id) != nullptr; }
  std::size_t tracked_count() const { return blocks_.size(); }
  std::uint32_t pushed(ContentId id) const;
  /// Remaining budget; ~0u when uncapped, 0 when exhausted or untracked.
  std::uint32_t budget_left(ContentId id) const;

  std::size_t pick(const store::ContentStore& store,
                   std::span<const std::uint8_t> eligible,
                   std::size_t& cursor) override;

 private:
  struct Block {
    ContentId id = 0;
    Instant deadline = 0;
    std::uint32_t budget = 0;  ///< 0 = uncapped
    std::uint32_t pushed = 0;
  };

  Block* find(ContentId id);
  const Block* find(ContentId id) const;

  // The live window is a handful of blocks; linear scans beat any map and
  // never allocate on the pick path.
  std::vector<Block> blocks_;
  Instant now_ = 0;
};

}  // namespace ltnc::stream
