#include "stream/harness.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dissemination/timer_wheel.hpp"
#include "net/udp_transport.hpp"
#include "session/endpoint.hpp"
#include "store/content_store.hpp"
#include "stream/receiver.hpp"
#include "telemetry/telemetry.hpp"
#include "wire/frame.hpp"

namespace ltnc::stream {
namespace {

// Metric names shared by all three drivers (and live_stream's --prom
// exposition); the latency histogram carries its tick unit in the name.
constexpr const char* kCompletedName = "ltnc_stream_blocks_completed_total";
constexpr const char* kMissName = "ltnc_stream_deadline_misses_total";
constexpr const char* kGoodputName = "ltnc_stream_goodput_bytes_total";

ReceiverInstruments make_instruments(telemetry::Registry& registry,
                                     const char* latency_name) {
  ReceiverInstruments inst;
  inst.latency = &registry.histogram(latency_name);
  inst.completed = &registry.counter(kCompletedName);
  inst.misses = &registry.counter(kMissName);
  inst.goodput_bytes = &registry.counter(kGoodputName);
  return inst;
}

/// Push attempts per destination per tick: enough to spend a full
/// (slack-boosted) block budget within one block cadence, so the source
/// keeps pace with emission even while older blocks still want symbols.
std::size_t derive_pushes(const StreamConfig& stream) {
  double budget = static_cast<double>(redundancy_budget(
      stream.k(), stream.base_overhead, stream.loss_estimate));
  if (stream.slack_boost_ticks > 0) budget *= 1.0 + stream.slack_boost;
  const auto per_tick = static_cast<std::size_t>(
      std::ceil(budget / static_cast<double>(stream.ticks_per_block)));
  return per_tick + 1;
}

void fill_latency_quantiles(StreamRunStats& out,
                            const telemetry::Registry& registry,
                            const char* latency_name) {
  const telemetry::Snapshot snap = registry.snapshot();
  if (const auto* h = snap.find_histogram(latency_name)) {
    out.latency_samples = h->count();
    out.latency_p50 = h->quantile(0.50);
    out.latency_p99 = h->quantile(0.99);
    out.latency_p999 = h->quantile(0.999);
  }
}

void fold_receiver(StreamRunStats& out, const Receiver& rx) {
  const ReceiverStats& s = rx.stream_stats();
  out.completed += s.blocks_completed;
  out.missed += s.deadline_misses;
  out.verify_failures += s.verify_failures;
  out.goodput_bytes += s.goodput_bytes;
  out.expired_frames += rx.endpoint().stats().expired_frames;
  out.every_receiver_decoded =
      out.every_receiver_decoded && s.blocks_completed > 0;
}

}  // namespace

StreamRunStats run_sim_stream(const SimStreamConfig& config) {
  LTNC_CHECK_MSG(config.stream.total_blocks > 0,
                 "sim stream needs a bounded block count");
  LTNC_CHECK_MSG(config.receivers > 0, "sim stream needs receivers");
  telemetry::Registry local_registry;
  telemetry::Registry& registry =
      config.registry != nullptr ? *config.registry : local_registry;
  constexpr const char* kLatency = "ltnc_stream_block_latency_ticks";
  const ReceiverInstruments inst = make_instruments(registry, kLatency);

  session::EndpointConfig net_cfg;
  net_cfg.feedback = session::FeedbackMode::kNone;
  session::Endpoint source(net_cfg, std::make_unique<store::ContentStore>());

  StreamConfig stream = config.stream;
  stream.fanout = config.receivers;  // unicast: one budget per receiver
  if (config.adaptive_budget) stream.loss_estimate = config.channel.loss_rate;
  StreamSource src(stream, source);

  std::vector<std::unique_ptr<net::SimChannel>> channels;
  std::vector<std::unique_ptr<Receiver>> fleet;
  channels.reserve(config.receivers);
  fleet.reserve(config.receivers);
  for (std::size_t r = 0; r < config.receivers; ++r) {
    net::SimChannelConfig ch = config.channel;
    ch.seed = config.channel.seed + 0x9e3779b97f4a7c15ULL * (r + 1);
    channels.push_back(std::make_unique<net::SimChannel>(ch));
    fleet.push_back(std::make_unique<Receiver>(stream, net_cfg, inst));
  }
  src.set_on_emit([&fleet](std::uint64_t seq, Instant birth) {
    for (auto& rx : fleet) rx->open_block(seq, birth);
  });

  const std::size_t pushes = config.pushes_per_tick != 0
                                 ? config.pushes_per_tick
                                 : derive_pushes(stream);
  Rng rng(config.seed);
  wire::Frame frame;
  // Everything must resolve by the last deadline plus channel drain; a
  // run that blows well past it is a harness bug, not a slow channel.
  const Instant horizon = src.birth_of(stream.total_blocks) +
                          stream.deadline_ticks +
                          4 * stream.ticks_per_block + 64;
  Instant t = 0;
  for (;; ++t) {
    LTNC_CHECK_MSG(t <= horizon, "sim stream failed to converge");
    source.tick(t);
    src.advance(t);
    bool exhausted = false;
    for (std::size_t i = 0; i < pushes && !exhausted; ++i) {
      for (std::size_t r = 0; r < fleet.size(); ++r) {
        if (!src.push_symbol(static_cast<session::PeerId>(r), rng)) {
          exhausted = true;
          break;
        }
      }
    }
    session::PeerId dest = 0;
    while (source.poll_transmit(dest, frame)) {
      channels[dest]->send(frame.bytes());
    }
    for (std::size_t r = 0; r < fleet.size(); ++r) {
      while (channels[r]->recv(frame)) {
        fleet[r]->ingest(0, frame.bytes(), t);
      }
      fleet[r]->finalize_due(t);
    }
    if (src.done() &&
        std::all_of(fleet.begin(), fleet.end(),
                    [](const auto& rx) { return rx->all_finalized(); })) {
      break;
    }
  }

  StreamRunStats out;
  out.receivers = config.receivers;
  out.blocks = src.blocks_emitted();
  out.source_frames = source.stats().frames_sent;
  out.duration_ticks = t;
  out.every_receiver_decoded = true;
  for (const auto& rx : fleet) fold_receiver(out, *rx);
  fill_latency_quantiles(out, registry, kLatency);
  return out;
}

StreamRunStats run_event_stream(const EventStreamConfig& config) {
  LTNC_CHECK_MSG(config.stream.total_blocks > 0,
                 "event stream needs a bounded block count");
  LTNC_CHECK_MSG(config.receivers > 0, "event stream needs receivers");
  telemetry::Registry local_registry;
  telemetry::Registry& registry =
      config.registry != nullptr ? *config.registry : local_registry;
  constexpr const char* kLatency = "ltnc_stream_block_latency_ticks";
  const ReceiverInstruments inst = make_instruments(registry, kLatency);

  session::EndpointConfig net_cfg;
  net_cfg.feedback = session::FeedbackMode::kNone;
  session::Endpoint source(net_cfg, std::make_unique<store::ContentStore>());

  // Broadcast: every receiver hears every surviving symbol, so the block
  // budget is a single fleet-wide allowance, not per receiver.
  StreamConfig stream = config.stream;
  stream.fanout = 1;
  stream.loss_estimate = std::max(stream.loss_estimate, config.loss_rate);
  StreamSource src(stream, source);

  std::vector<std::unique_ptr<Receiver>> fleet;
  fleet.reserve(config.receivers);
  for (std::size_t r = 0; r < config.receivers; ++r) {
    fleet.push_back(std::make_unique<Receiver>(stream, net_cfg, inst));
  }
  src.set_on_emit([&fleet](std::uint64_t seq, Instant birth) {
    for (auto& rx : fleet) rx->open_block(seq, birth);
  });

  struct Ev {
    enum Kind : std::uint8_t { kPush, kDeadline };
    Kind kind = kPush;
    std::uint64_t seq = 0;
  };
  dissem::TimerWheel<Ev> wheel;
  const std::size_t pushes = config.pushes_per_tick != 0
                                 ? config.pushes_per_tick
                                 : derive_pushes(stream);
  Rng push_rng(config.seed);
  Rng loss_rng(config.seed ^ 0xda3e39cb94b95bdbULL);
  wire::Frame frame;
  std::uint64_t deadlines_scheduled = 0;

  wheel.schedule(0, Ev{Ev::kPush, 0});
  while (auto ev = wheel.pop_next()) {
    const Instant now = wheel.now();
    if (ev->kind == Ev::kDeadline) {
      for (auto& rx : fleet) rx->finalize_block(ev->seq, now);
      continue;
    }
    src.advance(now);
    // One deadline event per emitted block, scheduled as emission catches
    // up (advance may emit several blocks on a slow push cadence).
    while (deadlines_scheduled < src.blocks_emitted()) {
      const std::uint64_t seq = deadlines_scheduled++;
      wheel.schedule(src.birth_of(seq) + stream.deadline_ticks + 1,
                     Ev{Ev::kDeadline, seq});
    }
    for (std::size_t i = 0; i < pushes; ++i) {
      if (!src.push_symbol(0, push_rng)) break;
    }
    session::PeerId dest = 0;
    while (source.poll_transmit(dest, frame)) {
      for (auto& rx : fleet) {
        if (loss_rng.chance(config.loss_rate)) continue;
        rx->ingest(0, frame.bytes(), now);
      }
    }
    if (!src.done()) wheel.schedule(now + 1, Ev{Ev::kPush, 0});
  }

  StreamRunStats out;
  out.receivers = config.receivers;
  out.blocks = src.blocks_emitted();
  out.source_frames = source.stats().frames_sent;
  out.duration_ticks = wheel.now();
  out.every_receiver_decoded = true;
  for (const auto& rx : fleet) fold_receiver(out, *rx);
  fill_latency_quantiles(out, registry, kLatency);
  return out;
}

StreamRunStats run_udp_stream(const UdpStreamConfig& config) {
  LTNC_CHECK_MSG(config.stream.total_blocks > 0,
                 "udp stream needs a bounded block count");
  LTNC_CHECK_MSG(config.receivers > 0, "udp stream needs receivers");
  telemetry::Registry local_registry;
  telemetry::Registry& registry =
      config.registry != nullptr ? *config.registry : local_registry;
  constexpr const char* kLatency = "ltnc_stream_block_latency_us";
  const ReceiverInstruments inst = make_instruments(registry, kLatency);

  const std::uint64_t total = config.stream.total_blocks;
  // Receiver sockets open on this thread so the sender can intern their
  // ports; each is then used exclusively by its receiver thread.
  std::vector<std::unique_ptr<net::UdpTransport>> rx_transports;
  rx_transports.reserve(config.receivers);
  std::string error;
  for (std::size_t r = 0; r < config.receivers; ++r) {
    net::UdpConfig ucfg;
    ucfg.bind_address = "127.0.0.1";
    auto transport = net::UdpTransport::open(ucfg, &error);
    LTNC_CHECK_MSG(transport != nullptr, "udp stream: receiver bind failed");
    rx_transports.push_back(std::move(transport));
  }
  net::UdpConfig sender_cfg;
  sender_cfg.bind_address = "127.0.0.1";
  auto tx = net::UdpTransport::open(sender_cfg, &error);
  LTNC_CHECK_MSG(tx != nullptr, "udp stream: sender bind failed");
  for (std::size_t r = 0; r < config.receivers; ++r) {
    const auto peer =
        tx->add_peer("127.0.0.1", rx_transports[r]->local_port());
    LTNC_CHECK_MSG(peer == static_cast<net::UdpTransport::PeerIndex>(r),
                   "udp stream: peer interning out of order");
  }

  // Births publish through an atomic table: slot holds birth+1 (0 = not
  // yet emitted) so block 0's birth of zero is distinguishable.
  std::unique_ptr<std::atomic<std::uint64_t>[]> births(
      new std::atomic<std::uint64_t>[total]());
  std::atomic<bool> abort{false};
  const auto t0 = std::chrono::steady_clock::now();
  const auto now_us = [&t0]() -> Instant {
    return static_cast<Instant>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  };

  struct RxOutcome {
    ReceiverStats stream;
    session::SessionStats session;
  };
  std::vector<RxOutcome> outcomes(config.receivers);
  std::vector<std::thread> threads;
  threads.reserve(config.receivers);
  for (std::size_t r = 0; r < config.receivers; ++r) {
    threads.emplace_back([&, r] {
      {
        session::EndpointConfig net_cfg;
        net_cfg.feedback = session::FeedbackMode::kNone;
        Receiver rx(config.stream, net_cfg, inst);
        net::UdpTransport& sock = *rx_transports[r];
        std::array<wire::Frame, net::UdpTransport::kMaxBatch> frames;
        std::array<net::UdpTransport::PeerIndex, net::UdpTransport::kMaxBatch>
            peers;
        std::uint64_t next_open = 0;
        while (!rx.all_finalized() && !abort.load(std::memory_order_relaxed)) {
          const Instant now = now_us();
          while (next_open < total) {
            const std::uint64_t stamped =
                births[next_open].load(std::memory_order_acquire);
            if (stamped == 0) break;
            rx.open_block(next_open, stamped - 1);
            ++next_open;
          }
          const std::size_t n = sock.recv_batch(frames, peers);
          for (std::size_t i = 0; i < n; ++i) {
            rx.ingest(0, frames[i].bytes(), now);
          }
          rx.finalize_due(now);
          if (n == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
        outcomes[r].stream = rx.stream_stats();
        outcomes[r].session = rx.endpoint().stats();
        // `rx` and `frames` die here, before the arena reclaim below.
      }
      // Worker-thread hygiene (same contract as the sharded data plane):
      // blocks cached in this thread's free lists would otherwise leak
      // with its TLS.
      WordArena::reclaim_local();
    });
  }

  // The calling thread is the sender.
  session::EndpointConfig net_cfg;
  net_cfg.feedback = session::FeedbackMode::kNone;
  session::Endpoint source(net_cfg, std::make_unique<store::ContentStore>());
  telemetry::SessionInstruments sender_instruments;
  sender_instruments.recorder = config.recorder;
  if (config.recorder != nullptr) source.set_telemetry(&sender_instruments);
  StreamConfig stream = config.stream;
  stream.fanout = config.receivers;
  StreamSource src(stream, source);
  src.set_on_emit([&births](std::uint64_t seq, Instant birth) {
    births[seq].store(birth + 1, std::memory_order_release);
  });

  const std::size_t pushes = config.pushes_per_iter != 0
                                 ? config.pushes_per_iter
                                 : derive_pushes(stream) * config.receivers;
  Rng rng(config.seed);
  Rng loss_rng(config.seed ^ 0x6a09e667f3bcc909ULL);
  std::array<wire::Frame, net::UdpTransport::kMaxBatch> out_frames;
  std::array<net::UdpTransport::TxItem, net::UdpTransport::kMaxBatch> items;
  // Wall-clock safety stop: the whole schedule plus two seconds.
  const Instant horizon = src.birth_of(total) + stream.deadline_ticks +
                          stream.ticks_per_block + 2'000'000;
  Instant now = 0;
  while (!src.done()) {
    now = now_us();
    if (now > horizon) {
      abort.store(true, std::memory_order_relaxed);
      break;
    }
    source.tick(now);
    src.advance(now);
    for (std::size_t i = 0; i < pushes; ++i) {
      const auto peer = static_cast<session::PeerId>(rng.uniform(
          static_cast<std::uint64_t>(config.receivers)));
      if (!src.push_symbol(peer, rng)) break;
    }
    bool sent_any = false;
    for (;;) {
      std::size_t n = 0;
      session::PeerId dest = 0;
      while (n < out_frames.size() && source.poll_transmit(dest, out_frames[n])) {
        if (loss_rng.chance(config.loss_rate)) continue;  // emulated loss
        items[n] = net::UdpTransport::TxItem{dest, out_frames[n].bytes()};
        ++n;
      }
      if (n == 0) break;
      tx->send_batch({items.data(), n});
      sent_any = true;
    }
    if (!sent_any) std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (std::thread& th : threads) th.join();

  StreamRunStats out;
  out.receivers = config.receivers;
  out.blocks = src.blocks_emitted();
  out.source_frames = source.stats().frames_sent;
  out.duration_ticks = now;
  out.every_receiver_decoded = true;
  for (const RxOutcome& rx : outcomes) {
    out.completed += rx.stream.blocks_completed;
    out.missed += rx.stream.deadline_misses;
    out.verify_failures += rx.stream.verify_failures;
    out.goodput_bytes += rx.stream.goodput_bytes;
    out.expired_frames += rx.session.expired_frames;
    out.every_receiver_decoded =
        out.every_receiver_decoded && rx.stream.blocks_completed > 0;
  }
  fill_latency_quantiles(out, registry, kLatency);
  return out;
}

}  // namespace ltnc::stream
