// Stream latency harnesses — the three drivers behind BENCH_stream.json
// and examples/live_stream.cpp, sharing one result shape:
//
//   run_sim_stream    deterministic net::SimChannel per receiver;
//                     loss/duplicate/reorder sweeps in simulated ticks
//   run_event_stream  dissem::TimerWheel broadcast at 10^4–10^5
//                     receivers — the scale point
//   run_udp_stream    real datagrams over UDP loopback, sender thread +
//                     one thread per receiver, microsecond tick domain
//
// Every driver wires a StreamSource (deadline-policy push side) against a
// fleet of stream::Receivers whose completion latencies land in shared
// telemetry::Histogram instruments; StreamRunStats folds the snapshot's
// p50/p99/p999 and the fleet's miss counters into plain numbers a bench
// can write and a smoke test can assert on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/sim_channel.hpp"
#include "stream/stream_source.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"

namespace ltnc::stream {

/// Outcome of one harness run, fleet-wide. Latency quantiles are in the
/// driver's tick domain (simulated ticks, or microseconds for UDP).
struct StreamRunStats {
  std::size_t receivers = 0;
  std::uint64_t blocks = 0;  ///< blocks the source emitted
  std::uint64_t completed = 0;
  std::uint64_t missed = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t expired_frames = 0;  ///< late symbols, summed over fleet
  std::uint64_t goodput_bytes = 0;
  std::uint64_t source_frames = 0;  ///< frames the source sent
  std::uint64_t duration_ticks = 0;
  std::uint64_t latency_samples = 0;
  double latency_p50 = 0.0;
  double latency_p99 = 0.0;
  double latency_p999 = 0.0;
  /// Smoke criterion: every receiver decoded at least one block.
  bool every_receiver_decoded = false;

  double miss_rate() const {
    const std::uint64_t finalized = completed + missed;
    return finalized == 0
               ? 0.0
               : static_cast<double>(missed) / static_cast<double>(finalized);
  }
};

struct SimStreamConfig {
  StreamConfig stream;  ///< total_blocks must be nonzero
  net::SimChannelConfig channel;
  std::size_t receivers = 4;
  /// Push attempts per receiver per tick; 0 derives it from the block
  /// budget and cadence (enough to spend a full boosted budget in time).
  std::size_t pushes_per_tick = 0;
  /// Feed the channel's loss rate into the source's budget estimate (the
  /// perfect-estimator stand-in for the UDP path's measured feedback).
  bool adaptive_budget = false;
  std::uint64_t seed = 1;
  /// Metrics sink; nullptr runs against a private registry.
  telemetry::Registry* registry = nullptr;
};

/// Runs a full stream over per-receiver simulated channels until every
/// block is finalized on every receiver. Deterministic for a fixed config.
StreamRunStats run_sim_stream(const SimStreamConfig& config);

struct EventStreamConfig {
  StreamConfig stream;  ///< total_blocks must be nonzero
  std::size_t receivers = 10000;
  /// I.i.d. per receiver per symbol. Unlike the UDP driver this one
  /// feeds the rate into the budget estimate — the scale point is about
  /// holding 10^5 decoders, not about sweeping budget shortfall.
  double loss_rate = 0.0;
  /// Broadcast symbols per tick; 0 derives it from budget and cadence.
  std::size_t pushes_per_tick = 0;
  std::uint64_t seed = 1;
  telemetry::Registry* registry = nullptr;
};

/// Runs the stream through the timer-wheel event engine: one source
/// broadcasting to `receivers` sinks, per-receiver Bernoulli loss. The
/// per-tick cost is O(receivers × symbols), so this is the driver that
/// holds 10^4–10^5 receivers.
StreamRunStats run_event_stream(const EventStreamConfig& config);

struct UdpStreamConfig {
  /// Tick domain is microseconds here: ticks_per_block = µs between
  /// blocks (1e6 / fps), deadline_ticks = deadline in µs.
  StreamConfig stream;  ///< total_blocks must be nonzero
  std::size_t receivers = 2;
  /// Emulated sender-side loss (dropped before the socket), so loss is
  /// controlled even on a lossless loopback. Budgets do NOT see it
  /// unless the caller also sets stream.loss_estimate — fixed-budget
  /// sweeps want the miss curve, adaptive runs want it compensated.
  double loss_rate = 0.0;
  std::size_t pushes_per_iter = 0;  ///< 0 derives from budget and cadence
  std::uint64_t seed = 1;
  telemetry::Registry* registry = nullptr;
  /// Optional flight recorder for the sender endpoint (--trace reuse).
  telemetry::FlightRecorder* recorder = nullptr;
};

/// Runs the stream over real UDP loopback: the calling thread is the
/// sender, each receiver runs on its own thread with its own socket and
/// thread-local arena. Wall-clock timed; latencies are microseconds.
StreamRunStats run_udp_stream(const UdpStreamConfig& config);

}  // namespace ltnc::stream
