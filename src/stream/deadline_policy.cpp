#include "stream/deadline_policy.hpp"

#include <limits>

namespace ltnc::stream {

namespace {
constexpr Instant kNoDeadline = std::numeric_limits<Instant>::max();
}

DeadlinePolicy::Block* DeadlinePolicy::find(ContentId id) {
  for (Block& b : blocks_) {
    if (b.id == id) return &b;
  }
  return nullptr;
}

const DeadlinePolicy::Block* DeadlinePolicy::find(ContentId id) const {
  return const_cast<DeadlinePolicy*>(this)->find(id);
}

void DeadlinePolicy::track(ContentId id, Instant deadline,
                           std::uint32_t budget) {
  if (Block* b = find(id)) {
    b->deadline = deadline;
    b->budget = budget;
    b->pushed = 0;
    return;
  }
  blocks_.push_back(Block{id, deadline, budget, 0});
}

void DeadlinePolicy::set_budget(ContentId id, std::uint32_t budget) {
  if (Block* b = find(id)) b->budget = budget;
}

void DeadlinePolicy::untrack(ContentId id) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].id != id) continue;
    if (i + 1 != blocks_.size()) blocks_[i] = blocks_.back();
    blocks_.pop_back();
    return;
  }
}

void DeadlinePolicy::on_push(ContentId id) {
  if (Block* b = find(id)) ++b->pushed;
}

std::uint32_t DeadlinePolicy::pushed(ContentId id) const {
  const Block* b = find(id);
  return b == nullptr ? 0 : b->pushed;
}

std::uint32_t DeadlinePolicy::budget_left(ContentId id) const {
  const Block* b = find(id);
  if (b == nullptr) return 0;
  if (b->budget == 0) return ~std::uint32_t{0};
  return b->pushed >= b->budget ? 0 : b->budget - b->pushed;
}

std::size_t DeadlinePolicy::pick(const store::ContentStore& store,
                                 std::span<const std::uint8_t> eligible,
                                 std::size_t& cursor) {
  const std::size_t n = store.size();
  // Two passes, mirroring the default scheduler: find the lexicographic
  // minimum of (deadline, fill_fraction) over admissible contents, then
  // take the first index at that minimum cycling from the cursor so full
  // ties rotate deterministically.
  constexpr double kTieEpsilon = 1e-12;
  Instant best_deadline = kNoDeadline;
  double best_fill = 2.0;
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (eligible[i] == 0) continue;
    Instant deadline = kNoDeadline;
    if (const Block* b = find(store.at(i).id())) {
      if (now_ > b->deadline) continue;  // overdue: pushing is wasted work
      if (b->budget != 0 && b->pushed >= b->budget) continue;  // spent
      deadline = b->deadline;
    }
    const double fill = store.at(i).fill_fraction();
    if (deadline < best_deadline ||
        (deadline == best_deadline && fill < best_fill)) {
      best_deadline = deadline;
      best_fill = fill;
    }
    any = true;
  }
  if (!any) return store::SwarmScheduler::kNone;
  for (std::size_t step = 1; step <= n; ++step) {
    const std::size_t i = (cursor + step) % n;
    if (eligible[i] == 0) continue;
    Instant deadline = kNoDeadline;
    if (const Block* b = find(store.at(i).id())) {
      if (now_ > b->deadline) continue;
      if (b->budget != 0 && b->pushed >= b->budget) continue;
      deadline = b->deadline;
    }
    if (deadline != best_deadline) continue;
    if (store.at(i).fill_fraction() <= best_fill + kTieEpsilon) {
      cursor = i;
      return i;
    }
  }
  return store::SwarmScheduler::kNone;  // unreachable: `any` was set above
}

}  // namespace ltnc::stream
