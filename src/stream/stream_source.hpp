// StreamSource — the sliding-window block lifecycle of a live sender.
//
// A live source (game capture, sensor burst, video encoder) produces a
// byte stream that is chunked into fixed-size blocks, each LT-encoded
// independently and only worth delivering before its deadline:
//
//    advance(now)                      push_symbol(peer)
//    ┌─ emit: register block seq as    ┌─ Endpoint::next_push consults
//    │  content id seq+1 (a fresh      │  the DeadlinePolicy (EDF over
//    │  LtSourceProtocol) and track    │  rarest-first) and charges the
//    │  its deadline + budget          │  block's redundancy budget
//    └─ expire: past-deadline blocks   └─ start_transfer emits one fresh
//       leave the store; in-flight        LT symbol toward `peer`
//       conversations are cancelled
//
// Block seq occupies content id seq+1 (id 0 stays the default content;
// stream ids are never reused, so late frames always resolve against the
// endpoint's expired ring, not a recycled block). The per-block push
// budget is k·(1+ε)/(1−losŝ) symbols — the LT overhead ε padded by the
// measured loss rate — rescaled every advance() so a shrinking deadline
// slack can boost redundancy for blocks that are almost out of time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "lt/lt_encoder.hpp"
#include "session/endpoint.hpp"
#include "session/protocols.hpp"
#include "stream/deadline_policy.hpp"

namespace ltnc::stream {

struct StreamConfig {
  /// Bytes per block; k = block_bytes / symbol_bytes natives per block.
  std::size_t block_bytes = 4096;
  std::size_t symbol_bytes = 256;
  /// Emission cadence: one block every this many ticks (1/fps in the
  /// harness's tick domain — µs for the UDP path).
  Instant ticks_per_block = 8;
  /// Decode deadline, relative to a block's emission instant.
  Instant deadline_ticks = 64;
  /// Cap on simultaneously live blocks; emitting past it force-expires
  /// the oldest (the window always slides, even against a stuck link).
  std::size_t window = 16;
  /// Blocks to emit; 0 = endless (the harnesses always bound it).
  std::uint64_t total_blocks = 0;
  /// LT budget overhead ε: a block may consume k·(1+ε)/(1−losŝ) pushes.
  double base_overhead = 0.9;
  /// Measured channel loss estimate feeding the budget (see
  /// set_loss_estimate — the harness's feedback path).
  double loss_estimate = 0.0;
  /// When a block's remaining slack drops below this many ticks, its
  /// budget is boosted by `slack_boost` — spend extra redundancy only on
  /// blocks that are almost out of time. 0 disables the boost.
  Instant slack_boost_ticks = 0;
  double slack_boost = 0.5;
  /// Receivers sharing one unicast source; budgets scale by this so each
  /// receiver still sees a full symbol budget.
  std::size_t fanout = 1;
  /// Per-block hot loop uses the fixed-point lt::DegreeLut sampler (same
  /// distribution, one RNG draw per symbol). Streams have no golden
  /// trajectories to protect, so the fast path is the default.
  bool fast_degree_lut = true;
  std::uint64_t seed = 1;

  std::size_t k() const { return block_bytes / symbol_bytes; }
};

/// Per-block symbol budget: k·(1+ε) padded by the loss estimate (clamped
/// to 95 % — a fully dead channel must not demand infinity).
std::uint32_t redundancy_budget(std::size_t k, double base_overhead,
                                double loss_estimate);

/// The protocol behind one live block at the source: a textbook LT
/// encoder over the block's natives. Emits forever (rateless), consumes
/// nothing (a live source never receives), rejects every advertise.
class LtSourceProtocol final : public session::NodeProtocol {
 public:
  LtSourceProtocol(std::size_t k, std::size_t payload_bytes,
                   std::uint64_t content_seed, bool use_lut);

  void deliver(const CodedPacket& packet) override { (void)packet; }
  bool would_reject(const BitVector& coeffs) const override {
    (void)coeffs;
    return true;
  }
  std::optional<CodedPacket> emit(Rng& rng) override {
    return encoder_.encode(rng);
  }
  bool can_emit() const override { return true; }
  std::size_t useful_packets() const override { return encoder_.k(); }
  bool complete() const override { return true; }
  bool finish_and_verify(std::uint64_t content_seed) override {
    (void)content_seed;
    return true;
  }
  OpCounters decode_ops() const override { return OpCounters{}; }
  OpCounters recode_ops() const override { return encoder_.ops(); }

 private:
  lt::LtEncoder encoder_;
};

class StreamSource {
 public:
  /// `endpoint` is the source's session endpoint (typically
  /// FeedbackMode::kNone over an empty ContentStore); the source installs
  /// its DeadlinePolicy on the endpoint's scheduler and registers/expires
  /// block contents in its store. Must outlive the source.
  StreamSource(const StreamConfig& config, session::Endpoint& endpoint);
  ~StreamSource();

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  static ContentId id_of(std::uint64_t seq) { return seq + 1; }
  static std::uint64_t seq_of(ContentId id) { return id - 1; }
  /// Emission instant of block `seq` — the latency anchor receivers
  /// measure against.
  Instant birth_of(std::uint64_t seq) const {
    return static_cast<Instant>(seq) * cfg_.ticks_per_block;
  }
  /// Per-block content seed — what the receiver's finish_and_verify
  /// checks decoded natives against.
  std::uint64_t content_seed_of(std::uint64_t seq) const {
    return cfg_.seed + seq;
  }

  /// Advances stream time: emits every block whose birth has come
  /// (invoking `on_emit`), expires every block whose deadline has passed,
  /// and rescales live budgets against the current loss estimate and
  /// remaining slack. `now` must not decrease.
  void advance(Instant now);

  /// Pushes one fresh symbol toward `peer`, block chosen by the deadline
  /// policy through Endpoint::next_push. False when every live block's
  /// budget is spent (or nothing is live).
  bool push_symbol(session::PeerId peer, Rng& rng);

  /// Hook invoked on each block emission (before any symbol of it can be
  /// pushed) — how harnesses open receiver-side windows and stamp birth
  /// tables. Cold path: once per block.
  void set_on_emit(std::function<void(std::uint64_t seq, Instant birth)> fn) {
    on_emit_ = std::move(fn);
  }

  /// Feeds back the measured channel loss (the harness's out-of-band
  /// estimator); budgets rescale on the next advance().
  void set_loss_estimate(double loss) { cfg_.loss_estimate = loss; }

  const StreamConfig& config() const { return cfg_; }
  DeadlinePolicy& policy() { return policy_; }
  const DeadlinePolicy& policy() const { return policy_; }
  std::uint64_t blocks_emitted() const { return next_seq_; }
  std::uint64_t blocks_retired() const { return blocks_retired_; }
  std::size_t live_blocks() const { return live_.size(); }
  bool done() const {
    return cfg_.total_blocks != 0 && next_seq_ >= cfg_.total_blocks &&
           live_.empty();
  }

 private:
  struct Live {
    std::uint64_t seq = 0;
    Instant birth = 0;
  };

  void emit_block(Instant now);
  void retire_block(std::size_t live_index);

  StreamConfig cfg_;
  session::Endpoint& ep_;
  DeadlinePolicy policy_;
  std::function<void(std::uint64_t, Instant)> on_emit_;
  std::vector<Live> live_;  ///< emission order (front = oldest)
  std::uint64_t next_seq_ = 0;
  std::uint64_t blocks_retired_ = 0;
  Instant now_ = 0;
};

}  // namespace ltnc::stream
