#include "stream/stream_source.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace ltnc::stream {

std::uint32_t redundancy_budget(std::size_t k, double base_overhead,
                                double loss_estimate) {
  const double survival =
      std::max(0.05, 1.0 - std::clamp(loss_estimate, 0.0, 1.0));
  const double budget =
      static_cast<double>(k) * (1.0 + base_overhead) / survival;
  return static_cast<std::uint32_t>(std::ceil(budget));
}

LtSourceProtocol::LtSourceProtocol(std::size_t k, std::size_t payload_bytes,
                                   std::uint64_t content_seed, bool use_lut)
    : encoder_(lt::make_native_payloads(k, payload_bytes, content_seed),
               lt::RobustSolitonParams{}, use_lut) {}

StreamSource::StreamSource(const StreamConfig& config,
                           session::Endpoint& endpoint)
    : cfg_(config), ep_(endpoint) {
  LTNC_CHECK_MSG(cfg_.symbol_bytes > 0, "stream needs a symbol size");
  LTNC_CHECK_MSG(cfg_.block_bytes % cfg_.symbol_bytes == 0,
                 "symbol size must divide the block size");
  LTNC_CHECK_MSG(cfg_.k() >= 2, "a block needs at least two symbols");
  LTNC_CHECK_MSG(cfg_.ticks_per_block > 0, "stream needs a block cadence");
  LTNC_CHECK_MSG(cfg_.window > 0, "stream needs a nonzero window");
  LTNC_CHECK_MSG(cfg_.fanout > 0, "stream needs a nonzero fanout");
  ep_.scheduler().set_policy(&policy_);
}

StreamSource::~StreamSource() {
  // The policy dies with this object; never leave the endpoint's
  // scheduler pointing at freed memory.
  if (ep_.scheduler().policy() == &policy_) {
    ep_.scheduler().set_policy(nullptr);
  }
}

void StreamSource::emit_block(Instant now) {
  const std::uint64_t seq = next_seq_++;
  const Instant birth = birth_of(seq);
  store::ContentConfig cc;
  cc.id = id_of(seq);
  cc.k = cfg_.k();
  cc.payload_bytes = cfg_.symbol_bytes;
  ep_.contents().register_content(
      cc, std::make_unique<LtSourceProtocol>(cfg_.k(), cfg_.symbol_bytes,
                                             content_seed_of(seq),
                                             cfg_.fast_degree_lut));
  const std::uint32_t budget =
      redundancy_budget(cfg_.k(), cfg_.base_overhead, cfg_.loss_estimate) *
      static_cast<std::uint32_t>(cfg_.fanout);
  policy_.track(cc.id, birth + cfg_.deadline_ticks, budget);
  live_.push_back(Live{seq, birth});
  if (on_emit_) on_emit_(seq, birth);
  (void)now;
}

void StreamSource::retire_block(std::size_t live_index) {
  const ContentId id = id_of(live_[live_index].seq);
  policy_.untrack(id);
  ep_.expire_content(id);
  live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(live_index));
  ++blocks_retired_;
}

void StreamSource::advance(Instant now) {
  LTNC_CHECK_MSG(now >= now_, "stream time must not decrease");
  now_ = now;
  policy_.set_now(now);
  // Expire every block whose deadline passed — late symbols are wasted
  // and the window must slide regardless of delivery outcomes.
  for (std::size_t i = 0; i < live_.size();) {
    if (now > live_[i].birth + cfg_.deadline_ticks) {
      retire_block(i);
    } else {
      ++i;
    }
  }
  // Emit every block whose birth has come, force-expiring the oldest
  // when the window is full.
  while ((cfg_.total_blocks == 0 || next_seq_ < cfg_.total_blocks) &&
         birth_of(next_seq_) <= now) {
    if (live_.size() >= cfg_.window) retire_block(0);
    emit_block(now);
  }
  // Rescale live budgets: the loss estimate may have moved, and blocks
  // whose slack dropped below the boost threshold get their extra
  // redundancy allowance.
  const std::uint32_t base =
      redundancy_budget(cfg_.k(), cfg_.base_overhead, cfg_.loss_estimate) *
      static_cast<std::uint32_t>(cfg_.fanout);
  for (const Live& block : live_) {
    const Instant deadline = block.birth + cfg_.deadline_ticks;
    std::uint32_t budget = base;
    if (cfg_.slack_boost_ticks > 0 && deadline >= now &&
        deadline - now < cfg_.slack_boost_ticks) {
      budget = static_cast<std::uint32_t>(
          std::ceil(static_cast<double>(budget) * (1.0 + cfg_.slack_boost)));
    }
    policy_.set_budget(id_of(block.seq), budget);
  }
}

bool StreamSource::push_symbol(session::PeerId peer, Rng& rng) {
  const store::Content* pick = ep_.next_push(peer);
  if (pick == nullptr) return false;
  const ContentId id = pick->id();
  if (!ep_.start_transfer(peer, id, rng)) return false;
  policy_.on_push(id);
  return true;
}

}  // namespace ltnc::stream
