#include "stream/receiver.hpp"

#include <memory>

#include "common/check.hpp"
#include "wire/codec.hpp"

namespace ltnc::stream {

Receiver::Receiver(const StreamConfig& config,
                   const session::EndpointConfig& endpoint_config,
                   const ReceiverInstruments& instruments)
    : cfg_(config),
      ep_(endpoint_config, std::make_unique<store::ContentStore>()),
      inst_(instruments) {}

Receiver::Block* Receiver::find(std::uint64_t seq) {
  for (Block& b : live_) {
    if (b.seq == seq) return &b;
  }
  return nullptr;
}

void Receiver::open_block(std::uint64_t seq, Instant birth) {
  if (find(seq) != nullptr) return;
  store::ContentConfig cc;
  cc.id = StreamSource::id_of(seq);
  cc.k = cfg_.k();
  cc.payload_bytes = cfg_.symbol_bytes;
  ep_.contents().register_content(
      cc, std::make_unique<session::LtSinkProtocol>(cfg_.k(),
                                                    cfg_.symbol_bytes));
  live_.push_back(Block{seq, birth, birth + cfg_.deadline_ticks, false});
  ++stats_.blocks_opened;
}

session::Endpoint::Event Receiver::ingest(session::PeerId peer,
                                          std::span<const std::uint8_t> bytes,
                                          Instant now) {
  // Peek the content id before the frame is consumed so a delivery event
  // can be attributed to its block without re-parsing.
  ContentId content = 0;
  const bool peeked =
      wire::peek_content(bytes, content) == wire::DecodeStatus::kOk;
  const session::Endpoint::Event event = ep_.handle_frame(peer, bytes);
  if (event == session::Endpoint::Event::kDelivered && peeked &&
      content != 0) {
    if (Block* block = find(StreamSource::seq_of(content))) {
      if (!block->completed && now <= block->deadline) {
        const store::Content* c = ep_.contents().find(content);
        if (c != nullptr && c->complete()) complete_block(*block, now);
      }
    }
  }
  return event;
}

void Receiver::complete_block(Block& block, Instant now) {
  // Verify the decode end-to-end before scoring it: a block that decoded
  // to the wrong bytes is a miss with extra steps.
  store::Content* c = ep_.contents().find(StreamSource::id_of(block.seq));
  LTNC_DCHECK(c != nullptr);
  const std::uint64_t content_seed = cfg_.seed + block.seq;
  if (!c->finish_and_verify(content_seed)) {
    ++stats_.verify_failures;
    return;  // stays incomplete; the deadline sweep scores the miss
  }
  block.completed = true;
  ++stats_.blocks_completed;
  stats_.goodput_bytes += cfg_.block_bytes;
  if (inst_.latency != nullptr) inst_.latency->record(now - block.birth);
  if (inst_.completed != nullptr) inst_.completed->add(1);
  if (inst_.goodput_bytes != nullptr) {
    inst_.goodput_bytes->add(cfg_.block_bytes);
  }
}

void Receiver::finalize_at(std::size_t index, Instant now) {
  Block& block = live_[index];
  if (!block.completed) {
    ++stats_.deadline_misses;
    if (inst_.misses != nullptr) inst_.misses->add(1);
  }
  ep_.expire_content(StreamSource::id_of(block.seq));
  live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(index));
  ++stats_.blocks_finalized;
  (void)now;
}

void Receiver::finalize_due(Instant now) {
  for (std::size_t i = 0; i < live_.size();) {
    if (now > live_[i].deadline) {
      finalize_at(i, now);
    } else {
      ++i;
    }
  }
}

void Receiver::finalize_block(std::uint64_t seq, Instant now) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].seq == seq) {
      finalize_at(i, now);
      return;
    }
  }
}

}  // namespace ltnc::stream
