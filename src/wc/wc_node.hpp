// "Without Coding" baseline (paper §IV-A).
//
// Pure epidemic dissemination of native packets: nodes buffer up to b
// innovative natives (oldest discarded when full), and at each gossip
// period push the least-sent buffered native to one random peer (ties
// broken oldest-first). Each buffered native is forwarded at most f times,
// f ≥ ⌈ln N⌉ being the classic epidemic threshold for whole-network
// delivery [24]. Duplicate detection is a set lookup, so — like RLNC,
// unlike LTNC — the feedback channel can abort every useless transfer and
// communication overhead is zero.
//
// The least-sent entry is kept in a lazy min-heap keyed by
// (times_sent, insertion order), so emit() is O(log b) — at the paper's
// k = 2048 a linear buffer scan would dominate whole-network simulations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/coded_packet.hpp"
#include "common/op_counters.hpp"
#include "common/rng.hpp"

namespace ltnc::wc {

struct WcConfig {
  std::size_t k = 0;
  std::size_t payload_bytes = 0;
  /// Buffer capacity b; 0 = unbounded (paper's large-buffer regime).
  std::size_t buffer_capacity = 0;
  /// Forward budget f per packet; 0 = keep forwarding while buffered.
  std::size_t fanout = 0;
};

class WcNode {
 public:
  explicit WcNode(const WcConfig& config);

  std::size_t k() const { return cfg_.k; }

  enum class Receive { kInnovative, kDuplicate };

  /// Accepts a native packet (degree-1 coded packet).
  Receive receive(const CodedPacket& packet);

  /// True iff the advertised native is already held.
  bool would_reject(const BitVector& coeffs) const;

  /// Least-sent buffered native (ties oldest-first), or nullopt when the
  /// buffer is empty or every entry exhausted its forward budget.
  std::optional<CodedPacket> emit(Rng& rng);

  std::size_t received_count() const { return received_count_; }
  bool complete() const { return received_count_ == cfg_.k; }
  const Payload& native_payload(std::size_t i) const;
  bool has_native(std::size_t i) const { return have_[i] != 0; }

  std::size_t buffered() const { return buffered_count_; }
  const OpCounters& ops() const { return ops_; }

 private:
  struct HeapEntry {
    std::uint32_t times_sent;
    std::uint64_t seq;  ///< insertion order: older entries first on ties
    std::uint32_t native;
  };
  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.times_sent != b.times_sent) return a.times_sent > b.times_sent;
      return a.seq > b.seq;
    }
  };

  void evict_oldest();

  WcConfig cfg_;
  std::vector<char> have_;
  std::vector<char> in_buffer_;
  std::vector<Payload> values_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapGreater> queue_;
  std::vector<std::uint32_t> fifo_;  ///< insertion order (eviction scan)
  std::size_t fifo_head_ = 0;
  std::size_t buffered_count_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t received_count_ = 0;
  OpCounters ops_;
};

}  // namespace ltnc::wc
