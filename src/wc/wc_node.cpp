#include "wc/wc_node.hpp"

#include "common/check.hpp"

namespace ltnc::wc {

WcNode::WcNode(const WcConfig& config)
    : cfg_(config),
      have_(config.k, 0),
      in_buffer_(config.k, 0),
      values_(config.k, Payload(0)) {
  LTNC_CHECK_MSG(config.k > 0, "k must be positive");
}

void WcNode::evict_oldest() {
  // The fifo may hold entries already evicted or retired; skip them.
  while (fifo_head_ < fifo_.size()) {
    const std::uint32_t victim = fifo_[fifo_head_++];
    if (in_buffer_[victim]) {
      in_buffer_[victim] = 0;
      --buffered_count_;
      return;
    }
  }
}

WcNode::Receive WcNode::receive(const CodedPacket& packet) {
  LTNC_CHECK_MSG(packet.degree() == 1,
                 "WC nodes exchange native packets only");
  const std::size_t i = packet.coeffs.first_set();
  ++ops_.invocations;
  ops_.control_steps += 1;
  if (have_[i]) return Receive::kDuplicate;
  have_[i] = 1;
  values_[i] = packet.payload;
  ops_.data_word_ops += packet.payload.word_count();  // one copy
  ++received_count_;

  if (cfg_.buffer_capacity != 0 &&
      buffered_count_ >= cfg_.buffer_capacity) {
    evict_oldest();  // discard the oldest (paper §IV-A)
  }
  in_buffer_[i] = 1;
  ++buffered_count_;
  fifo_.push_back(static_cast<std::uint32_t>(i));
  queue_.push(HeapEntry{0, next_seq_++, static_cast<std::uint32_t>(i)});
  return Receive::kInnovative;
}

bool WcNode::would_reject(const BitVector& coeffs) const {
  const std::size_t i = coeffs.first_set();
  if (i == BitVector::npos) return true;
  return have_[i] != 0;
}

std::optional<CodedPacket> WcNode::emit(Rng& rng) {
  (void)rng;  // selection is deterministic: least-sent, oldest-first
  while (!queue_.empty()) {
    HeapEntry top = queue_.top();
    queue_.pop();
    ops_.control_steps += 1;
    if (!in_buffer_[top.native]) continue;  // evicted since enqueued
    if (cfg_.fanout != 0 && top.times_sent >= cfg_.fanout) {
      // Forward budget exhausted: retire the entry.
      in_buffer_[top.native] = 0;
      --buffered_count_;
      continue;
    }
    ++top.times_sent;
    queue_.push(top);
    ++ops_.invocations;
    return CodedPacket::native(cfg_.k, top.native, values_[top.native]);
  }
  return std::nullopt;
}

const Payload& WcNode::native_payload(std::size_t i) const {
  LTNC_CHECK_MSG(i < cfg_.k && have_[i], "native not received");
  return values_[i];
}

}  // namespace ltnc::wc
