// Wire codec serialization/deserialization throughput (1 KB – 256 KB
// payloads, low and high code-vector degree at k = 1024) plus the
// adaptive code-vector size curve that justifies the dense/sparse
// crossover recorded in ROADMAP.md.
//
// Unless --benchmark_out is given explicitly, results are also written to
// BENCH_wire.json (google-benchmark JSON) so successive PRs can track
// framing overhead and codec throughput. The CodedPacketFrameSize rows
// carry dense_bytes / sparse_bytes / frame_bytes counters: sparse beats
// the 128-byte dense bitmap for every degree below the crossover.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "common/coded_packet.hpp"
#include "common/payload.hpp"
#include "common/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace {

using namespace ltnc;

constexpr std::size_t kBenchK = 1024;

CodedPacket make_packet(std::size_t degree, std::size_t payload_bytes,
                        std::uint64_t seed) {
  Rng rng(seed);
  BitVector coeffs(kBenchK);
  while (coeffs.popcount() < degree) coeffs.set(rng.uniform(kBenchK));
  return CodedPacket(std::move(coeffs),
                     Payload::deterministic(payload_bytes, seed, 0));
}

// Arg(0): payload bytes. Arg(1): degree.
void BM_SerializeCodedPacket(benchmark::State& state) {
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const auto degree = static_cast<std::size_t>(state.range(1));
  const CodedPacket packet = make_packet(degree, payload_bytes, 11);
  wire::Frame frame;
  for (auto _ : state) {
    wire::serialize(packet, frame);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
  state.counters["frame_bytes"] = static_cast<double>(frame.size());
}

void BM_DeserializeCodedPacket(benchmark::State& state) {
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const auto degree = static_cast<std::size_t>(state.range(1));
  const CodedPacket packet = make_packet(degree, payload_bytes, 13);
  wire::Frame frame;
  wire::serialize(packet, frame);
  CodedPacket decoded;
  for (auto _ : state) {
    const wire::DecodeStatus status =
        wire::deserialize(frame.bytes(), decoded);
    if (status != wire::DecodeStatus::kOk) state.SkipWithError("bad frame");
    benchmark::DoNotOptimize(decoded.payload.words());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}

void BM_RoundTripCodedPacket(benchmark::State& state) {
  const auto payload_bytes = static_cast<std::size_t>(state.range(0));
  const auto degree = static_cast<std::size_t>(state.range(1));
  const CodedPacket packet = make_packet(degree, payload_bytes, 17);
  wire::Frame frame;
  CodedPacket decoded;
  for (auto _ : state) {
    wire::serialize(packet, frame);
    const wire::DecodeStatus status =
        wire::deserialize(frame.bytes(), decoded);
    if (status != wire::DecodeStatus::kOk) state.SkipWithError("bad frame");
    benchmark::DoNotOptimize(decoded.payload.words());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}

void packet_sizes(benchmark::internal::Benchmark* b) {
  for (const std::int64_t payload : {1 << 10, 64 << 10, 256 << 10}) {
    for (const std::int64_t degree : {8, 512}) {  // low / high at k = 1024
      b->Args({payload, degree});
    }
  }
}

BENCHMARK(BM_SerializeCodedPacket)->Apply(packet_sizes);
BENCHMARK(BM_DeserializeCodedPacket)->Apply(packet_sizes);
BENCHMARK(BM_RoundTripCodedPacket)->Apply(packet_sizes);

// The adaptive-encoding size curve at k = 1024: dense is a flat 128
// bytes; sparse grows with degree and wins below the crossover. The
// degree sweep is the acceptance evidence for the rule in README.md.
void BM_CodedPacketFrameSize(benchmark::State& state) {
  const auto degree = static_cast<std::size_t>(state.range(0));
  const CodedPacket packet = make_packet(degree, 0, 19);
  wire::Frame frame;
  for (auto _ : state) {
    wire::serialize(packet, frame);
    benchmark::DoNotOptimize(frame.data());
  }
  state.counters["dense_bytes"] = static_cast<double>(
      wire::coeff_encoded_size(packet.coeffs, wire::CoeffEncoding::kDense));
  state.counters["sparse_bytes"] = static_cast<double>(
      wire::coeff_encoded_size(packet.coeffs, wire::CoeffEncoding::kSparse));
  state.counters["frame_bytes"] = static_cast<double>(frame.size());
  state.counters["sparse_wins"] =
      wire::choose_coeff_encoding(packet.coeffs) ==
              wire::CoeffEncoding::kSparse
          ? 1.0
          : 0.0;
}
BENCHMARK(BM_CodedPacketFrameSize)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Arg(96)->Arg(112)->Arg(120)->Arg(128)->Arg(192)->Arg(256)->Arg(512);

// v2 content multiplexing: the id varint a multi-content frame carries.
// Arg(0) is the content id; the counters record the exact wire cost over
// the id-0 baseline. Acceptance (ROADMAP): ≤ 2 bytes on Soliton-typical
// frames for every id derive_content_id can produce (14-bit fold).
void BM_ContentIdOverhead(benchmark::State& state) {
  const auto cid = static_cast<ltnc::ContentId>(state.range(0));
  const CodedPacket packet = make_packet(8, 1 << 10, 23);  // degree 8, 1 KB
  wire::Frame frame;
  for (auto _ : state) {
    wire::serialize(cid, packet, frame);
    benchmark::DoNotOptimize(frame.data());
  }
  const std::size_t base = wire::serialized_size(packet);
  state.counters["frame_bytes"] = static_cast<double>(frame.size());
  state.counters["cid_overhead_bytes"] =
      static_cast<double>(frame.size() - base);
  state.counters["within_two_bytes"] = frame.size() - base <= 2 ? 1.0 : 0.0;
}
BENCHMARK(BM_ContentIdOverhead)->Arg(0)->Arg(1)->Arg(127)->Arg(0x3FFF);

void BM_SerializeFeedback(benchmark::State& state) {
  wire::Frame frame;
  std::uint64_t token = 0;
  for (auto _ : state) {
    wire::serialize_feedback(wire::MessageType::kAbort, ++token, frame);
    benchmark::DoNotOptimize(frame.data());
  }
}
BENCHMARK(BM_SerializeFeedback);

void BM_SerializeCcArray(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> leaders(k);
  for (std::size_t i = 0; i < k; ++i) {
    leaders[i] = static_cast<std::uint32_t>(i % 97);
  }
  wire::Frame frame;
  for (auto _ : state) {
    wire::serialize_cc(leaders, frame);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_SerializeCcArray)->Arg(256)->Arg(1024);

}  // namespace

// Custom main: default --benchmark_out to BENCH_wire.json so every run
// leaves a machine-readable baseline for future PRs to diff against
// (same convention as micro_primitives / BENCH_kernels.json).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) filtered = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_wire.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out && !filtered) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
