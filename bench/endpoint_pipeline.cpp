// Endpoint pipeline bench — the sharded data plane's two costs, measured
// separately and written to BENCH_endpoint.json so successive PRs can
// track the fleet:
//
//   1. Shard scaling: frames/sec through a syscall-free ring-fed decode
//      pipeline (route_frame → SPSC ring → Endpoint::handle_frame) for
//      1, 2 and 4 worker shards, with the speedup over one shard. On a
//      multi-core box the curve should approach the shard count; the
//      JSON records hardware_concurrency so a single-core CI result
//      (speedup ≈ 1) reads as the hardware's ceiling, not a regression.
//
//   2. The batched socket edge: frames per sendmmsg/recvmmsg call over a
//      loopback fan-out to 8 receiver sockets — the syscall amortization
//      that motivates batching at all (target: ≥ 8 frames per call).
//
// Usage: endpoint_pipeline [--out=FILE] [--frames=N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "lt/lt_encoder.hpp"
#include "net/udp_transport.hpp"
#include "session/endpoint.hpp"
#include "session/protocols.hpp"
#include "session/sharded.hpp"
#include "store/content_store.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace {

using namespace ltnc;

constexpr std::size_t kK = 64;           // blocks per content
constexpr std::size_t kPayload = 256;    // bytes per block
constexpr std::size_t kContents = 16;
constexpr std::uint32_t kPeers = 64;

/// Receiver fleet for the scaling measurement: every shard registers a
/// sink for every content (a conversation can hash anywhere), no
/// completion acks — pure inbound decode throughput.
class DecodeApp final : public session::ShardApp {
 public:
  std::unique_ptr<session::Endpoint> make_endpoint(
      std::uint32_t /*shard*/) override {
    auto contents = std::make_unique<store::ContentStore>();
    for (std::size_t i = 0; i < kContents; ++i) {
      store::ContentConfig cfg;
      cfg.id = static_cast<ContentId>(i + 1);
      cfg.k = kK;
      cfg.payload_bytes = kPayload;
      contents->register_content(
          cfg, std::make_unique<session::LtSinkProtocol>(kK, kPayload));
    }
    session::EndpointConfig cfg;
    cfg.feedback = session::FeedbackMode::kNone;
    return std::make_unique<session::Endpoint>(cfg, std::move(contents));
  }

  bool pump(std::uint32_t /*shard*/, session::Endpoint& /*ep*/) override {
    return false;
  }
};

struct ScalingPoint {
  std::uint32_t shards = 0;
  std::uint64_t frames = 0;
  double seconds = 0.0;
  double frames_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
};

/// Pre-serializes `total` LT-coded data frames cycling over the
/// (peer, content) grid. Regenerated per run: routing swaps the pool's
/// storage into the rings.
std::vector<wire::Frame> make_frame_pool(std::uint64_t total,
                                         std::uint64_t seed) {
  std::vector<lt::LtEncoder> encoders;
  encoders.reserve(kContents);
  for (std::size_t i = 0; i < kContents; ++i) {
    encoders.emplace_back(
        lt::make_native_payloads(kK, kPayload, 555 + i));
  }
  Rng rng(seed);
  std::vector<wire::Frame> pool(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    const ContentId content = static_cast<ContentId>(i % kContents + 1);
    wire::serialize(content, encoders[i % kContents].encode(rng), pool[i]);
  }
  return pool;
}

ScalingPoint run_scaling(std::uint32_t shards, std::uint64_t total_frames) {
  std::vector<wire::Frame> pool = make_frame_pool(total_frames, 42);

  DecodeApp app;
  session::ShardedConfig cfg;
  cfg.num_shards = shards;
  session::ShardedEndpoint sharded(cfg, app);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_frames; ++i) {
    const auto peer = static_cast<session::PeerId>(i % kPeers);
    while (!sharded.route_frame(peer, pool[i])) {
      std::this_thread::yield();  // ring full — the shard is the bottleneck
    }
  }
  while (sharded.frames_processed() < total_frames) {
    std::this_thread::yield();
  }
  const auto stop = std::chrono::steady_clock::now();
  sharded.stop();

  ScalingPoint point;
  point.shards = shards;
  point.frames = total_frames;
  point.seconds = std::chrono::duration<double>(stop - start).count();
  point.frames_per_sec =
      static_cast<double>(total_frames) / point.seconds;
  return point;
}

struct BatchPoint {
  bool batching_active = false;
  std::uint64_t frames = 0;
  double frames_per_send_call = 0.0;
  double frames_per_recv_call = 0.0;
  bool ok = false;
};

/// Loopback fan-out to 8 receiver sockets: send in kMaxBatch bursts,
/// drain between bursts so kernel buffers never overflow, and read the
/// syscall amortization off the transport tallies.
BatchPoint run_batch_edge(std::uint64_t total_frames) {
  BatchPoint point;
  std::string error;
  constexpr std::size_t kReceivers = 8;

  std::vector<std::unique_ptr<net::UdpTransport>> receivers;
  for (std::size_t r = 0; r < kReceivers; ++r) {
    net::UdpConfig cfg;
    cfg.bind_address = "127.0.0.1";
    auto transport = net::UdpTransport::open(cfg, &error);
    if (transport == nullptr) {
      std::cerr << "batch edge skipped: " << error << "\n";
      return point;
    }
    receivers.push_back(std::move(transport));
  }
  net::UdpConfig tx_cfg;
  tx_cfg.bind_address = "127.0.0.1";
  auto sender = net::UdpTransport::open(tx_cfg, &error);
  if (sender == nullptr) {
    std::cerr << "batch edge skipped: " << error << "\n";
    return point;
  }
  for (std::size_t r = 0; r < kReceivers; ++r) {
    sender->add_peer("127.0.0.1", receivers[r]->local_port());
  }
  point.batching_active = sender->batching_active();

  const wire::Frame payload = [] {
    wire::Frame frame;
    frame.resize(kPayload);
    for (std::size_t i = 0; i < kPayload; ++i) {
      frame.mutable_bytes()[i] = static_cast<std::uint8_t>(i);
    }
    return frame;
  }();

  constexpr std::size_t kBurst = net::UdpTransport::kMaxBatch;
  std::vector<net::UdpTransport::TxItem> items(kBurst);
  std::vector<wire::Frame> rx_frames(kBurst);
  std::vector<net::UdpTransport::PeerIndex> rx_peers(kBurst);
  std::uint64_t sent = 0;
  std::uint64_t drained = 0;
  std::uint64_t bursts = 0;
  const auto drain_all = [&] {
    for (auto& receiver : receivers) {
      for (int spin = 0; spin < 10000; ++spin) {
        const std::size_t n = receiver->recv_batch(rx_frames, rx_peers);
        drained += n;
        if (n == 0) break;
      }
    }
  };
  while (sent < total_frames) {
    const std::size_t batch =
        static_cast<std::size_t>(std::min<std::uint64_t>(
            kBurst, total_frames - sent));
    for (std::size_t i = 0; i < batch; ++i) {
      items[i] = {static_cast<net::UdpTransport::PeerIndex>(
                      (sent + i) % kReceivers),
                  payload.bytes()};
    }
    sent += sender->send_batch({items.data(), batch});
    // Drain every few bursts: deep enough queues that recvmmsg can show
    // its batching, shallow enough that kernel buffers never overflow
    // (4 bursts / 8 receivers = 32 queued datagrams ≈ 10 KB per socket).
    if (++bursts % 4 == 0) drain_all();
  }
  drain_all();

  point.frames = sent;
  point.frames_per_send_call = sender->stats().frames_per_send_call();
  double recv_calls = 0.0;
  double recv_frames = 0.0;
  for (const auto& receiver : receivers) {
    recv_calls += static_cast<double>(receiver->stats().recv_calls -
                                      receiver->stats().recv_would_block);
    recv_frames += static_cast<double>(receiver->stats().frames_received);
  }
  point.frames_per_recv_call =
      recv_calls == 0.0 ? 0.0 : recv_frames / recv_calls;
  point.ok = drained > 0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_endpoint.json";
  std::uint64_t total_frames = 24000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--frames=", 0) == 0) {
      total_frames = static_cast<std::uint64_t>(
          std::atoll(std::string(arg.substr(9)).c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --out=FILE --frames=N\n";
      return 0;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "endpoint pipeline: " << total_frames << " frames of "
            << kPayload << " B payload over " << kContents
            << " contents x " << kPeers << " peers ("
            << cores << " hardware threads)\n";

  std::vector<ScalingPoint> curve;
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ScalingPoint point = run_scaling(shards, total_frames);
    point.speedup_vs_1 = curve.empty()
                             ? 1.0
                             : curve.front().frames_per_sec == 0.0
                                   ? 0.0
                                   : point.frames_per_sec /
                                         curve.front().frames_per_sec;
    std::cout << "  shards=" << point.shards << ": "
              << static_cast<std::uint64_t>(point.frames_per_sec)
              << " frames/s (" << point.seconds << " s, speedup x"
              << point.speedup_vs_1 << ")\n";
    curve.push_back(point);
  }

  const BatchPoint batch = run_batch_edge(total_frames / 4);
  if (batch.ok) {
    std::cout << "  udp batch edge: " << batch.frames_per_send_call
              << " frames/sendmmsg, " << batch.frames_per_recv_call
              << " frames/recvmmsg (batching "
              << (batch.batching_active ? "active" : "fallback") << ")\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"endpoint_pipeline\",\n";
  out << "  \"hardware_concurrency\": " << cores << ",\n";
  out << "  \"frames\": " << total_frames << ",\n";
  out << "  \"payload_bytes\": " << kPayload << ",\n";
  out << "  \"contents\": " << kContents << ",\n";
  out << "  \"peers\": " << kPeers << ",\n";
  out << "  \"shard_scaling\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const ScalingPoint& p = curve[i];
    out << "    {\"shards\": " << p.shards << ", \"seconds\": " << p.seconds
        << ", \"frames_per_sec\": " << p.frames_per_sec
        << ", \"speedup_vs_1\": " << p.speedup_vs_1 << "}"
        << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"udp_batch\": {\n";
  out << "    \"measured\": " << (batch.ok ? "true" : "false") << ",\n";
  out << "    \"batching_active\": "
      << (batch.batching_active ? "true" : "false") << ",\n";
  out << "    \"frames\": " << batch.frames << ",\n";
  out << "    \"frames_per_send_call\": " << batch.frames_per_send_call
      << ",\n";
  out << "    \"frames_per_recv_call\": " << batch.frames_per_recv_call
      << "\n";
  out << "  }\n";
  out << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
