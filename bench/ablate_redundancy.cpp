// Ablation — §III-C.1 redundancy detection on/off.
//
// The paper reports the mechanism "decreases by 31 % the number of
// redundant encoded packets inserted in the data structure upon
// reception". With the binary feedback channel the same detector also
// aborts transfers, so turning it off shows up in overhead, wasted
// payload bytes and stored-packet bloat.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : 128;
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 120 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : 3;

  bench::print_header("Ablation: redundancy detection (Algorithm 3)",
                      "N = " + std::to_string(cfg.num_nodes) +
                          ", k = " + std::to_string(cfg.k) +
                          ", runs = " + std::to_string(runs));

  const auto on = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
  dissem::SimConfig off_cfg = cfg;
  off_cfg.ltnc.enable_redundancy_detection = false;
  const auto off = metrics::run_monte_carlo(Scheme::kLtnc, off_cfg, runs);

  TextTable table({"metric", "detector ON", "detector OFF"});
  table.add_row({"communication overhead %",
                 TextTable::num(100 * on.overhead.mean(), 1),
                 TextTable::num(100 * off.overhead.mean(), 1)});
  table.add_row({"abort rate %", TextTable::num(100 * on.abort_rate.mean(), 1),
                 TextTable::num(100 * off.abort_rate.mean(), 1)});
  table.add_row({"mean completion round",
                 TextTable::num(on.mean_completion.mean(), 1),
                 TextTable::num(off.mean_completion.mean(), 1)});
  table.add_row({"decode ctrl ops / node",
                 TextTable::num(on.decode_control_per_node, 0),
                 TextTable::num(off.decode_control_per_node, 0)});
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  const double reduction =
      off.overhead.mean() > 0.0
          ? 100.0 * (1.0 - on.overhead.mean() / off.overhead.mean())
          : 0.0;
  std::cout << "\nredundant payload insertions removed by the detector: "
            << TextTable::num(reduction, 1) << "% (paper: 31%)\n";
  return 0;
}
