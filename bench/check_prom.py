#!/usr/bin/env python3
"""Validator for the telemetry layer's Prometheus text exposition.

CI pipes the output of `epidemic_sim --prom=FILE` / the swarm smoke's
--prom file through this instead of promtool (not installed in the
image). Checks the subset of the exposition format the exporter uses:

  * every sample line parses as  name[{label,...}] value
  * metric/label names are legal ([a-zA-Z_:][a-zA-Z0-9_:]*)
  * every sample is preceded by # HELP and # TYPE headers for its family
    (histogram sample suffixes _bucket/_sum/_count belong to the family)
  * the TYPE is one of counter|gauge|histogram and sample suffixes match
  * histogram buckets are cumulative (counts never decrease as le grows),
    end in le="+Inf", and the +Inf count equals _count
  * counter values are non-negative

Exit 0 = valid, 1 = problems (each printed), 2 = usage/IO error.

    python3 bench/check_prom.py /tmp/ltnc.prom
    ./build/examples/epidemic_sim --prom=/dev/stdout | \
        python3 bench/check_prom.py -
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{label="value",...} value   (labels optional; value = float literal)
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name: str, types: dict) -> str:
    """Histogram samples use suffixed names; map them back to the family."""
    for suffix in SUFFIXES:
        base = name[: -len(suffix)] if name.endswith(suffix) else None
        if base and types.get(base) == "histogram":
            return base
    return name


def parse_labels(raw, errors, lineno):
    labels = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        m = LABEL_RE.match(part)
        if not m:
            errors.append(f"line {lineno}: bad label syntax: {part!r}")
            continue
        labels[m.group(1)] = m.group(2)
    return labels


def check(lines):
    errors = []
    helps, types = {}, {}
    # (family, frozenset(labels minus le)) -> list of (le, count, lineno)
    buckets = {}
    counts = {}  # same key -> _count value
    samples = 0

    for lineno, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not NAME_RE.match(name):
                    errors.append(f"line {lineno}: bad metric name {name!r}")
                if parts[1] == "HELP":
                    helps[name] = True
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram"):
                        errors.append(
                            f"line {lineno}: unknown TYPE {kind!r} for {name}")
                    if name in types:
                        errors.append(f"line {lineno}: duplicate TYPE {name}")
                    types[name] = kind
            continue  # other comments are legal

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = m.group("name")
        labels = parse_labels(m.group("labels") or "", errors, lineno)
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad value {m.group('value')!r}")
            continue

        fam = family_of(name, types)
        if fam not in types:
            errors.append(f"line {lineno}: sample {name} has no # TYPE")
            continue
        if fam not in helps:
            errors.append(f"line {lineno}: sample {name} has no # HELP")
        kind = types[fam]
        if kind == "histogram":
            if name == fam:
                errors.append(
                    f"line {lineno}: histogram {fam} sample lacks "
                    f"_bucket/_sum/_count suffix")
            key = (fam, frozenset(
                (k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {lineno}: _bucket without le label")
                    continue
                le = (math.inf if labels["le"] == "+Inf"
                      else float(labels["le"]))
                buckets.setdefault(key, []).append((le, value, lineno))
            elif name.endswith("_count"):
                counts[key] = (value, lineno)
        elif kind == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative")
        if name == fam and kind != "histogram" and "le" in labels:
            errors.append(f"line {lineno}: non-histogram {name} has le label")

    for (fam, _), series in buckets.items():
        # Emission order is ascending le; verify rather than re-sort so an
        # out-of-order exposition fails too.
        les = [le for le, _, _ in series]
        if les != sorted(les):
            errors.append(f"{fam}: buckets not in ascending le order")
        vals = [v for _, v, _ in series]
        if any(b < a for a, b in zip(vals, vals[1:])):
            errors.append(f"{fam}: bucket counts not cumulative")
        if not series or not math.isinf(series[-1][0]):
            errors.append(f"{fam}: bucket series does not end at le=\"+Inf\"")

    for key, (count_value, lineno) in counts.items():
        series = buckets.get(key)
        if not series:
            errors.append(
                f"line {lineno}: {key[0]}_count without _bucket series")
        elif math.isinf(series[-1][0]) and series[-1][1] != count_value:
            errors.append(
                f"{key[0]}: le=\"+Inf\" bucket {series[-1][1]} != "
                f"_count {count_value}")

    return errors, samples


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        stream = sys.stdin if argv[1] == "-" else open(argv[1])
    except OSError as e:
        print(f"check_prom: {e}", file=sys.stderr)
        return 2
    with stream:
        errors, samples = check(stream)
    if errors:
        for e in errors:
            print(f"check_prom: {e}", file=sys.stderr)
        return 1
    if samples == 0:
        print("check_prom: no samples found", file=sys.stderr)
        return 1
    print(f"check_prom: OK ({samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
