// Micro-benchmarks for the substrate primitives the codecs are built on —
// regressions here silently shift every figure, so they are pinned
// separately: the GF(2) kernel layer (scalar vs dispatched SIMD, sized
// like real payloads), BitVector word ops, alias sampling, Fenwick
// updates, Gaussian row reduction, BP reception.
//
// Unless --benchmark_out is given explicitly, results are also written to
// BENCH_kernels.json (google-benchmark JSON) so successive PRs can track
// the kernel-throughput trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.hpp"
#include "common/discrete_distribution.hpp"
#include "common/fenwick.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "gf2/gaussian.hpp"
#include "lt/bp_decoder.hpp"
#include "lt/lt_encoder.hpp"
#include "lt/soliton.hpp"

namespace {

using namespace ltnc;

// ---------------------------------------------------------------------------
// Kernel layer: every primitive at payload sizes m = 1 KB … 256 KB, once
// through the pinned scalar reference and once through the dispatched
// SIMD backend, so the speedup is visible in one run.
//
// Throughput convention: bytes_per_second counts the logical block size
// (m) once per iteration for every kernel, regardless of how many streams
// it reads — so GB/s figures are comparable across kernels.
// ---------------------------------------------------------------------------

const kernels::Ops& backend(bool scalar) {
  return scalar ? kernels::scalar_ops() : kernels::ops();
}

std::vector<std::uint64_t> random_block(std::uint64_t seed, std::size_t n) {
  SplitMix64 sm(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& w : v) w = sm.next();
  return v;
}

void BM_Kernel_Xor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  auto dst = random_block(1, n);
  const auto src = random_block(2, n);
  for (auto _ : state) {
    ops.xor_words(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_Popcount(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  const auto src = random_block(3, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.popcount_words(src.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_PopcountXor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  const auto a = random_block(4, n);
  const auto b = random_block(5, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.popcount_xor_words(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_AndNot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  auto dst = random_block(6, n);
  const auto src = random_block(7, n);
  for (auto _ : state) {
    ops.and_not_words(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_PopcountAndNot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  const auto a = random_block(8, n);
  const auto b = random_block(9, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops.popcount_and_not_words(a.data(), b.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_Any(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  // Worst case: all zero, the whole block must be scanned.
  const std::vector<std::uint64_t> src(n, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.any_words(src.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void BM_Kernel_XorAccumulate8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0)) / 8;
  const auto& ops = backend(state.range(1) != 0);
  constexpr std::size_t kSources = 8;
  auto dst = random_block(10, n);
  std::vector<std::vector<std::uint64_t>> sources;
  std::vector<const std::uint64_t*> ptrs;
  for (std::size_t s = 0; s < kSources; ++s) {
    sources.push_back(random_block(11 + s, n));
    ptrs.push_back(sources.back().data());
  }
  for (auto _ : state) {
    ops.xor_accumulate(dst.data(), ptrs.data(), kSources, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
}

void KernelSizes(benchmark::internal::Benchmark* b) {
  // {payload bytes, 1 = scalar reference / 0 = dispatched backend}
  for (std::int64_t scalar : {1, 0}) {
    for (std::int64_t bytes : {1 << 10, 4 << 10, 16 << 10, 64 << 10,
                               256 << 10}) {
      b->Args({bytes, scalar});
    }
  }
}

BENCHMARK(BM_Kernel_Xor)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_Popcount)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_PopcountXor)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_AndNot)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_PopcountAndNot)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_Any)->Apply(KernelSizes);
BENCHMARK(BM_Kernel_XorAccumulate8)->Apply(KernelSizes);

void BM_BitVectorXor(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  BitVector a(bits);
  BitVector b(bits);
  for (std::size_t i = 0; i < bits / 8; ++i) {
    a.set(rng.uniform(bits));
    b.set(rng.uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.xor_with(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BitVectorXor)->Arg(512)->Arg(2048)->Arg(8192);

void BM_BitVectorPopcountXor(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  BitVector a(bits);
  BitVector b(bits);
  for (std::size_t i = 0; i < bits / 8; ++i) {
    a.set(rng.uniform(bits));
    b.set(rng.uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.popcount_xor(b));
  }
}
BENCHMARK(BM_BitVectorPopcountXor)->Arg(512)->Arg(2048)->Arg(8192);

void BM_RobustSolitonSample(benchmark::State& state) {
  const lt::RobustSoliton rs(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.sample(rng));
  }
}
BENCHMARK(BM_RobustSolitonSample)->Arg(512)->Arg(2048)->Arg(8192);

void BM_RobustSolitonSampleLut(benchmark::State& state) {
  // The fixed-point inverse-CDF LUT vs the alias table above: one 64-bit
  // draw and integer compares per sample, no floating point.
  const lt::RobustSoliton rs(static_cast<std::size_t>(state.range(0)), {},
                             /*use_lut=*/true);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.sample(rng));
  }
}
BENCHMARK(BM_RobustSolitonSampleLut)->Arg(512)->Arg(2048)->Arg(8192);

void BM_FenwickAddQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fenwick<std::int64_t> f(n);
  Rng rng(4);
  for (auto _ : state) {
    f.add(rng.uniform(n), 1);
    benchmark::DoNotOptimize(f.prefix_sum(rng.uniform(n)));
  }
}
BENCHMARK(BM_FenwickAddQuery)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GaussianInsert(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  lt::LtEncoder enc(lt::make_native_payloads(k, 8, 5));
  Rng rng(6);
  std::vector<CodedPacket> stream;
  for (std::size_t i = 0; i < 2 * k; ++i) stream.push_back(enc.encode(rng));
  std::size_t i = 0;
  gf2::OnlineGaussianSolver solver(k, 8);
  for (auto _ : state) {
    if (solver.complete() || i >= stream.size()) {
      state.PauseTiming();
      solver = gf2::OnlineGaussianSolver(k, 8);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(solver.insert(stream[i++]));
  }
}
BENCHMARK(BM_GaussianInsert)->Arg(512)->Arg(2048);

void BM_BpReceive(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  lt::LtEncoder enc(lt::make_native_payloads(k, 8, 7));
  Rng rng(8);
  std::vector<CodedPacket> stream;
  for (std::size_t i = 0; i < 3 * k; ++i) stream.push_back(enc.encode(rng));
  std::size_t i = 0;
  auto decoder = std::make_unique<lt::BpDecoder>(k, 8);
  for (auto _ : state) {
    if (decoder->complete() || i >= stream.size()) {
      state.PauseTiming();
      decoder = std::make_unique<lt::BpDecoder>(k, 8);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(decoder->receive(stream[i++]));
  }
}
BENCHMARK(BM_BpReceive)->Arg(512)->Arg(2048);

}  // namespace

// Custom main: default --benchmark_out to BENCH_kernels.json so every run
// leaves a machine-readable baseline for future PRs to diff against.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  bool filtered = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only — "--benchmark_out_format" alone must not suppress
    // the default baseline file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) filtered = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
  // Only full runs refresh the baseline: a filtered run writing the
  // default file would replace the committed baseline with a partial one.
  if (!has_out && !filtered) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
