// Micro-benchmarks for the substrate primitives the codecs are built on —
// regressions here silently shift every figure, so they are pinned
// separately: BitVector word ops, alias sampling, Fenwick updates,
// Gaussian row reduction, BP reception.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/bitvector.hpp"
#include "common/discrete_distribution.hpp"
#include "common/fenwick.hpp"
#include "common/rng.hpp"
#include "gf2/gaussian.hpp"
#include "lt/bp_decoder.hpp"
#include "lt/lt_encoder.hpp"
#include "lt/soliton.hpp"

namespace {

using namespace ltnc;

void BM_BitVectorXor(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  BitVector a(bits);
  BitVector b(bits);
  for (std::size_t i = 0; i < bits / 8; ++i) {
    a.set(rng.uniform(bits));
    b.set(rng.uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.xor_with(b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_BitVectorXor)->Arg(512)->Arg(2048)->Arg(8192);

void BM_BitVectorPopcountXor(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  BitVector a(bits);
  BitVector b(bits);
  for (std::size_t i = 0; i < bits / 8; ++i) {
    a.set(rng.uniform(bits));
    b.set(rng.uniform(bits));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.popcount_xor(b));
  }
}
BENCHMARK(BM_BitVectorPopcountXor)->Arg(512)->Arg(2048)->Arg(8192);

void BM_RobustSolitonSample(benchmark::State& state) {
  const lt::RobustSoliton rs(static_cast<std::size_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.sample(rng));
  }
}
BENCHMARK(BM_RobustSolitonSample)->Arg(512)->Arg(2048)->Arg(8192);

void BM_FenwickAddQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fenwick<std::int64_t> f(n);
  Rng rng(4);
  for (auto _ : state) {
    f.add(rng.uniform(n), 1);
    benchmark::DoNotOptimize(f.prefix_sum(rng.uniform(n)));
  }
}
BENCHMARK(BM_FenwickAddQuery)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GaussianInsert(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  lt::LtEncoder enc(lt::make_native_payloads(k, 8, 5));
  Rng rng(6);
  std::vector<CodedPacket> stream;
  for (std::size_t i = 0; i < 2 * k; ++i) stream.push_back(enc.encode(rng));
  std::size_t i = 0;
  gf2::OnlineGaussianSolver solver(k, 8);
  for (auto _ : state) {
    if (solver.complete() || i >= stream.size()) {
      state.PauseTiming();
      solver = gf2::OnlineGaussianSolver(k, 8);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(solver.insert(stream[i++]));
  }
}
BENCHMARK(BM_GaussianInsert)->Arg(512)->Arg(2048);

void BM_BpReceive(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  lt::LtEncoder enc(lt::make_native_payloads(k, 8, 7));
  Rng rng(8);
  std::vector<CodedPacket> stream;
  for (std::size_t i = 0; i < 3 * k; ++i) stream.push_back(enc.encode(rng));
  std::size_t i = 0;
  auto decoder = std::make_unique<lt::BpDecoder>(k, 8);
  for (auto _ : state) {
    if (decoder->complete() || i >= stream.size()) {
      state.PauseTiming();
      decoder = std::make_unique<lt::BpDecoder>(k, 8);
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(decoder->receive(stream[i++]));
  }
}
BENCHMARK(BM_BpReceive)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
