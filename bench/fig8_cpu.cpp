// Figure 8 — "Computational cost of each operation (CPU cycles)".
//
// Four panels, each swept over the code length k (paper: 400…2000):
//   8a  recoding, control structures   (LTNC vs RLNC)
//   8b  decoding, control structures   (log scale; the headline −99 %)
//   8c  recoding, data (per byte)
//   8d  decoding, data (per byte, log scale)
//
// "Control" is measured with a tiny payload (m = 8 B) so structure
// operations dominate; "data" with a real payload (m = 2 KB) and reported
// per content byte. The paper reports CPU cycles on a 2.33 GHz Xeon; we
// report wall nanoseconds plus exact word-operation counters — the shapes
// (linear vs quadratic in k, who wins) are what must match.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/ltnc_codec.hpp"
#include "lt/bp_decoder.hpp"
#include "lt/lt_encoder.hpp"
#include "rlnc/rlnc_codec.hpp"

namespace {

using namespace ltnc;

constexpr std::size_t kControlPayload = 8;
constexpr std::size_t kDataPayload = 2048;
constexpr std::uint64_t kContentSeed = 99;

std::vector<CodedPacket> lt_stream(std::size_t k, std::size_t m,
                                   std::size_t count, std::uint64_t seed) {
  lt::LtEncoder enc(lt::make_native_payloads(k, m, kContentSeed));
  Rng rng(seed);
  std::vector<CodedPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(enc.encode(rng));
  return out;
}

// Sparse random GF(2) combinations — representative of RLNC network
// traffic (recoded packets have support ≤ sparsity).
std::vector<CodedPacket> sparse_stream(std::size_t k, std::size_t m,
                                       std::size_t count,
                                       std::uint64_t seed) {
  const auto natives = lt::make_native_payloads(k, m, kContentSeed);
  const std::size_t weight = rlnc::RlncConfig{k, m, 0}.effective_sparsity();
  Rng rng(seed);
  std::vector<CodedPacket> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CodedPacket pkt{BitVector(k), Payload(m)};
    for (std::size_t b = 0; b < weight; ++b) {
      const std::size_t j = rng.uniform(k);
      if (!pkt.coeffs.test(j)) {
        pkt.coeffs.set(j);
        pkt.payload.xor_with(natives[j]);
      }
    }
    if (pkt.coeffs.none()) {
      pkt.coeffs.set(i % k);
      pkt.payload.xor_with(natives[i % k]);
    }
    out.push_back(std::move(pkt));
  }
  return out;
}

void fill_ltnc(core::LtncCodec& codec, std::size_t packets) {
  const auto stream =
      lt_stream(codec.k(), codec.payload_bytes(), packets, 7);
  for (const auto& pkt : stream) codec.receive(pkt);
}

// --- Fig. 8a / 8c: recoding ------------------------------------------------

void BM_Fig8_Recode_LTNC(benchmark::State& state, std::size_t m) {
  const auto k = static_cast<std::size_t>(state.range(0));
  // A mid-dissemination store: roughly half the content received.
  core::LtncConfig cfg;
  cfg.k = k;
  cfg.payload_bytes = m;
  core::LtncCodec codec(cfg);
  fill_ltnc(codec, k / 2);
  Rng rng(11);
  for (auto _ : state) {
    auto pkt = codec.recode(rng);
    benchmark::DoNotOptimize(pkt);
  }
  const auto& ops = codec.recode_ops();
  state.counters["ctrl_ops/op"] = ops.invocations == 0
      ? 0.0
      : static_cast<double>(ops.control_total()) /
            static_cast<double>(ops.invocations);
  state.counters["data_bytes/op"] = ops.invocations == 0
      ? 0.0
      : ops.data_bytes() / static_cast<double>(ops.invocations);
  if (m > kControlPayload) {
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
  }
}

void BM_Fig8_Recode_RLNC(benchmark::State& state, std::size_t m) {
  const auto k = static_cast<std::size_t>(state.range(0));
  rlnc::RlncConfig cfg;
  cfg.k = k;
  cfg.payload_bytes = m;
  rlnc::RlncCodec codec(cfg);
  for (auto& pkt : sparse_stream(k, m, k / 2, 13)) {
    codec.receive(std::move(pkt));
  }
  Rng rng(11);
  for (auto _ : state) {
    auto pkt = codec.recode(rng);
    benchmark::DoNotOptimize(pkt);
  }
  const auto& ops = codec.recode_ops();
  state.counters["ctrl_ops/op"] = ops.invocations == 0
      ? 0.0
      : static_cast<double>(ops.control_total()) /
            static_cast<double>(ops.invocations);
  state.counters["data_bytes/op"] = ops.invocations == 0
      ? 0.0
      : ops.data_bytes() / static_cast<double>(ops.invocations);
  if (m > kControlPayload) {
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(m));
  }
}

// --- Fig. 8b / 8d: decoding -------------------------------------------------

void BM_Fig8_Decode_LTNC(benchmark::State& state, std::size_t m) {
  const auto k = static_cast<std::size_t>(state.range(0));
  // Decoding in LTNC is plain belief propagation over the Tanner graph —
  // the recoding structures (degree index, components, …) are recoding
  // state and their upkeep is charged to Fig. 8a/8c, as in the paper.
  const auto stream = lt_stream(k, m, 3 * k, 17);
  std::uint64_t received = 0;
  std::uint64_t ctrl_ops = 0;
  std::uint64_t data_ops = 0;
  for (auto _ : state) {
    lt::BpDecoder decoder(k, m);
    std::size_t i = 0;
    while (!decoder.complete() && i < stream.size()) {
      decoder.receive(stream[i++]);
    }
    received += i;
    ctrl_ops += decoder.ops().control_total();
    data_ops += decoder.ops().data_word_ops;
    if (!decoder.complete()) {
      state.SkipWithError("LT stream exhausted before completion");
      return;
    }
  }
  const double iters =
      static_cast<double>(std::max<std::uint64_t>(1, state.iterations()));
  state.counters["pkts_used"] = static_cast<double>(received) / iters;
  state.counters["ctrl_ops/decode"] = static_cast<double>(ctrl_ops) / iters;
  state.counters["data_words/decode"] =
      static_cast<double>(data_ops) / iters;
  if (m > kControlPayload) {
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k * m));
  }
}

void BM_Fig8_Decode_RLNC(benchmark::State& state, std::size_t m) {
  const auto k = static_cast<std::size_t>(state.range(0));
  rlnc::RlncConfig cfg;
  cfg.k = k;
  cfg.payload_bytes = m;
  const auto stream = sparse_stream(k, m, k + k / 4 + 64, 19);
  std::uint64_t ctrl_ops = 0;
  std::uint64_t data_ops = 0;
  for (auto _ : state) {
    rlnc::RlncCodec codec(cfg);
    std::size_t i = 0;
    while (!codec.complete() && i < stream.size()) {
      codec.receive(stream[i++]);
    }
    if (!codec.complete()) {
      state.SkipWithError("sparse stream exhausted before full rank");
      return;
    }
    benchmark::DoNotOptimize(codec.native_payload(0));  // back-substitution
    ctrl_ops += codec.decode_ops().control_total();
    data_ops += codec.decode_ops().data_word_ops;
  }
  const double iters =
      static_cast<double>(std::max<std::uint64_t>(1, state.iterations()));
  state.counters["ctrl_ops/decode"] = static_cast<double>(ctrl_ops) / iters;
  state.counters["data_words/decode"] =
      static_cast<double>(data_ops) / iters;
  if (m > kControlPayload) {
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(k * m));
  }
}

void register_all() {
  const std::vector<std::int64_t> ks{400, 800, 1200, 1600, 2000};
  auto reg = [&](const char* name, void (*fn)(benchmark::State&, std::size_t),
                 std::size_t m, double min_time) {
    auto* b = benchmark::RegisterBenchmark(
        name, [fn, m](benchmark::State& s) { fn(s, m); });
    for (const auto k : ks) b->Arg(k);
    b->Unit(benchmark::kMicrosecond)->MinTime(min_time);
  };
  reg("fig8a_recode_control/LTNC", BM_Fig8_Recode_LTNC, kControlPayload, 0.1);
  reg("fig8a_recode_control/RLNC", BM_Fig8_Recode_RLNC, kControlPayload, 0.1);
  reg("fig8b_decode_control/LTNC", BM_Fig8_Decode_LTNC, kControlPayload, 0.2);
  reg("fig8b_decode_control/RLNC", BM_Fig8_Decode_RLNC, kControlPayload, 0.2);
  reg("fig8c_recode_data/LTNC", BM_Fig8_Recode_LTNC, kDataPayload, 0.1);
  reg("fig8c_recode_data/RLNC", BM_Fig8_Recode_RLNC, kDataPayload, 0.1);
  reg("fig8d_decode_data/LTNC", BM_Fig8_Decode_LTNC, kDataPayload, 0.2);
  reg("fig8d_decode_data/RLNC", BM_Fig8_Decode_RLNC, kDataPayload, 0.2);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
