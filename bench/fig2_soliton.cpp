// Figure 2 — "Robust Soliton: optimal distribution of degrees for encoded
// packets": regenerates the distribution the paper plots (log-log, k =
// 2048) plus the summary statistics LT coding depends on.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "lt/soliton.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  const auto args = bench::Args::parse(argc, argv);
  const std::size_t k = args.k != 0 ? args.k : 2048;
  const lt::RobustSolitonParams params{};
  const lt::RobustSoliton rs(k, params);
  const auto ideal = lt::ideal_soliton_weights(k);

  bench::print_header(
      "Figure 2: Robust Soliton degree distribution",
      "k = " + std::to_string(k) + ", c = " + TextTable::num(params.c, 2) +
          ", delta = " + TextTable::num(params.delta, 2) +
          ", spike R = " + TextTable::num(rs.ripple(), 1));

  TextTable table({"degree", "ideal rho(d)", "robust mu(d)"});
  auto sci = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return std::string(buf);
  };
  // Log-spaced degrees as on the paper's log-log axes, plus the spike
  // neighbourhood.
  const auto spike =
      static_cast<std::size_t>(static_cast<double>(k) / rs.ripple());
  std::vector<std::size_t> degrees{1, 2, 3, 4, 5, 8, 10, 16, 32, 64, 100};
  for (std::size_t d : {spike - 1, spike, spike + 1, 100 + spike}) {
    if (d >= 1 && d <= k) degrees.push_back(d);
  }
  degrees.push_back(1000);
  degrees.push_back(k);
  std::sort(degrees.begin(), degrees.end());
  degrees.erase(std::unique(degrees.begin(), degrees.end()), degrees.end());
  for (std::size_t d : degrees) {
    if (d < 1 || d > k) continue;
    table.add_row({TextTable::integer(static_cast<long long>(d)),
                   sci(ideal[d - 1]), sci(rs.probability(d))});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  double mass12 = rs.probability(1) + rs.probability(2);
  std::cout << "\nmass at degree 1-2: " << TextTable::num(100 * mass12, 1)
            << "% (paper: 'more than 50% of degree 1 or 2' incl. degree 3: "
            << TextTable::num(100 * (mass12 + rs.probability(3)), 1)
            << "%)\n";
  std::cout << "mean degree: " << TextTable::num(rs.mean_degree(), 2)
            << " (Theta(log k), log k = "
            << TextTable::num(std::log(static_cast<double>(k)), 2) << ")\n";
  return 0;
}
