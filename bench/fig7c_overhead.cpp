// Figure 7c — "Overhead": communication overhead (%) as a function of the
// code length k.
//
// Overhead = payload receptions beyond the k each node strictly needs,
// relative to k, averaged over completed nodes. WC and RLNC have *zero*
// overhead by construction — their redundancy detection is exact, so the
// binary feedback channel aborts every useless transfer — which the bench
// verifies rather than assumes. LTNC's detector only sees degree ≤ 3, so
// some non-innovative payloads are paid for (paper: ~20 % at k = 2048,
// decreasing with k).
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  const std::size_t nodes = args.nodes != 0 ? args.nodes
                            : (args.full ? 1000 : 128);
  const std::size_t runs = args.runs != 0 ? args.runs : (args.full ? 25 : 3);
  std::vector<std::size_t> ks = args.full
                                    ? std::vector<std::size_t>{512, 1024,
                                                               2048, 4096}
                                    : std::vector<std::size_t>{128, 256, 512,
                                                               1024};
  if (args.k != 0) ks = {args.k};

  bench::print_header(
      "Figure 7c: communication overhead vs code length",
      "N = " + std::to_string(nodes) + ", runs = " + std::to_string(runs) +
          (args.full ? " [paper scale]" : " [default scale; --full for paper]"));

  TextTable table({"k", "LTNC overhead %", "WC %", "RLNC %",
                   "LTNC abort rate %"});
  for (const std::size_t k : ks) {
    dissem::SimConfig cfg;
    cfg.num_nodes = nodes;
    cfg.k = k;
    cfg.payload_bytes = 64;
    cfg.seed = args.seed;
    cfg.max_rounds = 120 * k;

    const auto ltnc = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
    const auto wc = metrics::run_monte_carlo(Scheme::kWc, cfg, runs);
    const auto rlnc = metrics::run_monte_carlo(Scheme::kRlnc, cfg, runs);
    table.add_row({TextTable::integer(static_cast<long long>(k)),
                   TextTable::num(100 * ltnc.overhead.mean(), 1),
                   TextTable::num(100 * wc.overhead.mean(), 2),
                   TextTable::num(100 * rlnc.overhead.mean(), 2),
                   TextTable::num(100 * ltnc.abort_rate.mean(), 1)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\npaper shape: LTNC ~20% at k = 2048, decreasing with k; "
               "WC and RLNC exactly 0.\n";
  return 0;
}
