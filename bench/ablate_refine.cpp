// Ablation — §III-B.3 refinement on/off.
//
// Refinement substitutes over-represented natives with rare equivalents so
// the native-degree distribution approaches the Dirac belief propagation
// needs. Without it the occurrence spread grows and decoding needs more
// packets (higher overhead, slower convergence).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : 128;
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 120 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : 3;

  bench::print_header("Ablation: refinement (Algorithm 2)",
                      "N = " + std::to_string(cfg.num_nodes) +
                          ", k = " + std::to_string(cfg.k) +
                          ", runs = " + std::to_string(runs));

  const auto on = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
  dissem::SimConfig off_cfg = cfg;
  off_cfg.ltnc.enable_refinement = false;
  const auto off = metrics::run_monte_carlo(Scheme::kLtnc, off_cfg, runs);

  TextTable table({"metric", "refinement ON", "refinement OFF"});
  table.add_row({"occurrence relative stddev %",
                 TextTable::num(100 * on.occurrence_rel_stddev, 2),
                 TextTable::num(100 * off.occurrence_rel_stddev, 2)});
  table.add_row({"communication overhead %",
                 TextTable::num(100 * on.overhead.mean(), 1),
                 TextTable::num(100 * off.overhead.mean(), 1)});
  table.add_row({"mean completion round",
                 TextTable::num(on.mean_completion.mean(), 1),
                 TextTable::num(off.mean_completion.mean(), 1)});
  table.add_row({"recode ctrl ops / node",
                 TextTable::num(on.recode_control_per_node, 0),
                 TextTable::num(off.recode_control_per_node, 0)});
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nexpected: ON keeps the occurrence spread near-flat at the "
               "price of extra recode work.\n";
  return 0;
}
