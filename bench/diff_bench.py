#!/usr/bin/env python3
"""Regression diff for the committed BENCH_*.json baselines.

Every perf-sensitive subsystem writes a machine-readable BENCH_*.json
(kernels, wire codec, endpoint pipeline, event-engine scaling). The
committed copies are the baselines; re-running the benches overwrites
them. This script reports how far the fresh numbers drifted from the
baseline so a PR that tanks events/sec or inflates peak RSS is visible in
CI — as a *report*, not a gate: single-core CI boxes are noisy, so the
default exit code is 0 and --strict is opt-in.

Baselines come from a directory (--baseline-dir) or straight out of git
(--git REV, default HEAD — reads `git show REV:FILE`), so the usual
invocation after re-running the benches in a dirty tree is just:

    python3 bench/diff_bench.py            # fresh cwd files vs HEAD
    python3 bench/diff_bench.py --tolerance 0.5 --strict

Numeric leaves are compared by relative difference against --tolerance
(default 0.25); a nested JSON document is flattened to dotted/indexed
paths first ("shard_scaling[1].frames_per_sec"). Non-numeric leaves must
match exactly. Missing baselines (a brand-new bench) are noted and
skipped.
"""

import argparse
import glob
import json
import math
import os
import subprocess
import sys


def flatten(node, prefix=""):
    """Flattens nested dicts/lists into {path: leaf} with stable paths."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten(value, path))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(flatten(value, f"{prefix}[{i}]"))
    else:
        out[prefix] = node
    return out


def load_baseline(name, args):
    if args.baseline_dir:
        path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(path):
            return None
        with open(path) as f:
            return json.load(f)
    try:
        blob = subprocess.run(
            ["git", "show", f"{args.git}:./{name}"],
            capture_output=True,
            check=True,
            cwd=args.dir,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    return json.loads(blob)


def rel_diff(old, new):
    if old == new:
        return 0.0
    denom = max(abs(old), abs(new))
    if denom == 0.0:
        return 0.0
    return abs(new - old) / denom


def compare_file(name, baseline, current, tolerance):
    """Returns (rows, drift_count). Each row: (path, old, new, status)."""
    old_flat = flatten(baseline)
    new_flat = flatten(current)
    rows = []
    drift = 0
    for path in sorted(set(old_flat) | set(new_flat)):
        old = old_flat.get(path)
        new = new_flat.get(path)
        if old is None or new is None:
            rows.append((path, old, new, "added" if old is None else "removed"))
            continue
        numeric = isinstance(old, (int, float)) and isinstance(new, (int, float)) \
            and not isinstance(old, bool) and not isinstance(new, bool)
        if not numeric:
            if old != new:
                drift += 1
                rows.append((path, old, new, "CHANGED"))
            continue
        if math.isnan(old) or math.isnan(new):
            continue
        d = rel_diff(float(old), float(new))
        if d > tolerance:
            drift += 1
            arrow = "WORSE?" if new < old else "DRIFT"
            rows.append((path, old, new, f"{arrow} {d * 100.0:+.1f}%"))
    return rows, drift


def fmt(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: glob in --dir)")
    parser.add_argument("--dir", default=".",
                        help="directory holding the fresh BENCH_*.json files")
    parser.add_argument("--baseline-dir", default=None,
                        help="directory holding baseline copies "
                             "(default: read them from git)")
    parser.add_argument("--git", default="HEAD",
                        help="git revision for baselines (default HEAD)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative drift to report (default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any metric drifts past tolerance")
    args = parser.parse_args()

    files = args.files or sorted(
        os.path.basename(p) for p in glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not files:
        print("diff_bench: no BENCH_*.json files found")
        return 0

    total_drift = 0
    for name in files:
        current_path = os.path.join(args.dir, name)
        if not os.path.exists(current_path):
            print(f"-- {name}: not present in {args.dir}, skipped")
            continue
        with open(current_path) as f:
            current = json.load(f)
        baseline = load_baseline(name, args)
        if baseline is None:
            print(f"-- {name}: no baseline (new bench?), skipped")
            continue
        rows, drift = compare_file(name, baseline, current, args.tolerance)
        total_drift += drift
        status = "ok" if drift == 0 else f"{drift} metric(s) drifted"
        print(f"-- {name}: {status} (tolerance ±{args.tolerance * 100:.0f}%)")
        for path, old, new, verdict in rows:
            print(f"   {verdict:>14}  {path}: {fmt(old)} -> {fmt(new)}")

    if total_drift:
        print(f"diff_bench: {total_drift} metric(s) beyond tolerance "
              f"({'failing' if args.strict else 'informational'})")
    else:
        print("diff_bench: all tracked metrics within tolerance")
    return 1 if (args.strict and total_drift) else 0


if __name__ == "__main__":
    sys.exit(main())
