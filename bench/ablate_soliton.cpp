// Ablation — Robust Soliton parameters (c, δ).
//
// The paper fixes "the optimal value" of the degree distribution but does
// not publish its (c, δ); LT deployments tune them per code length. This
// sweep shows how much of LTNC's communication overhead and completion
// time is parameter tuning rather than algorithm — context for comparing
// our Fig. 7b/7c absolute numbers against the paper's.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : 128;
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 200 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : 3;

  bench::print_header("Ablation: Robust Soliton parameters (c, delta)",
                      "N = " + std::to_string(cfg.num_nodes) +
                          ", k = " + std::to_string(cfg.k) +
                          ", runs = " + std::to_string(runs));

  TextTable table({"c", "delta", "mean degree", "overhead %",
                   "mean completion", "converged"});
  for (const double c : {0.03, 0.1, 0.3}) {
    for (const double delta : {0.05, 0.5}) {
      dissem::SimConfig sweep = cfg;
      sweep.ltnc.soliton.c = c;
      sweep.ltnc.soliton.delta = delta;
      const lt::RobustSoliton rs(sweep.k, sweep.ltnc.soliton);
      const auto mc =
          metrics::run_monte_carlo(Scheme::kLtnc, sweep, runs);
      table.add_row({TextTable::num(c, 2), TextTable::num(delta, 2),
                     TextTable::num(rs.mean_degree(), 2),
                     TextTable::num(100 * mc.overhead.mean(), 1),
                     TextTable::num(mc.mean_completion.mean(), 1),
                     std::to_string(mc.runs_fully_converged) + "/" +
                         std::to_string(mc.runs)});
    }
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nlower c / higher delta -> lighter distribution tail, "
               "cheaper packets, but a weaker ripple; the sweet spot "
               "shifts with k.\n";
  return 0;
}
