// In-text statistics of §III — measured during a full dissemination and
// compared against the values the paper reports inline:
//   §III-B.1  first degree accepted 99.9 %, avg 1.02 retries otherwise
//   §III-B.2  target degree reached 95 %, mean relative deviation 0.2 %
//   §III-B.3  relative σ of native-packet occurrences 0.1 %
//   §III-C.1  redundancy detection removes 31 % of redundant insertions
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : (args.full ? 1000 : 128);
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 120 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : (args.full ? 25 : 3);

  bench::print_header(
      "In-text statistics of LTNC's recoding machinery (paper §III)",
      "N = " + std::to_string(cfg.num_nodes) +
          ", k = " + std::to_string(cfg.k) + ", runs = " +
          std::to_string(runs) +
          (args.full ? " [paper scale]" : " [default scale; --full for paper]"));

  const auto ltnc = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);

  // §III-C.1's "31 % fewer redundant insertions" needs the ablation.
  dissem::SimConfig off = cfg;
  off.ltnc.enable_redundancy_detection = false;
  const auto no_red = metrics::run_monte_carlo(Scheme::kLtnc, off, runs);
  // Redundant insertions show up as payload overhead: useless packets that
  // crossed the wire and landed in the data structures.
  const double reduction =
      no_red.overhead.mean() > 0.0
          ? 1.0 - ltnc.overhead.mean() / no_red.overhead.mean()
          : 0.0;

  TextTable table({"statistic", "paper", "measured"});
  table.add_row({"first degree accepted", "99.9%",
                 TextTable::num(100 * ltnc.degree_first_accept_rate, 2) + "%"});
  table.add_row({"avg draws when retried", "1.02 retries",
                 TextTable::num(ltnc.degree_mean_retries, 2) + " retries"});
  table.add_row({"build reaches target degree", "95%",
                 TextTable::num(100 * ltnc.build_target_rate, 1) + "%"});
  table.add_row({"mean relative degree deviation", "0.2%",
                 TextTable::num(100 * ltnc.build_mean_relative_deviation, 2) +
                     "%"});
  table.add_row({"occurrence relative stddev", "0.1%",
                 TextTable::num(100 * ltnc.occurrence_rel_stddev, 2) + "%"});
  table.add_row({"redundant insertions removed", "31%",
                 TextTable::num(100 * reduction, 1) + "%"});
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nnote: paper values were measured at N = 1000, k = 2048, "
               "25 runs; small scales inflate the variance statistics.\n";
  return 0;
}
