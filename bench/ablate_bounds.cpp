// Ablation — §III-B.1 reachability bounds on/off.
//
// The two bounds discard degree draws the node cannot possibly build,
// avoiding wasted builds that fall short of their target. Without them
// every draw is accepted and the builder's target-hit rate collapses in
// the early (sparse) dissemination phase.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : 128;
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 120 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : 3;

  bench::print_header("Ablation: degree reachability bounds (§III-B.1)",
                      "N = " + std::to_string(cfg.num_nodes) +
                          ", k = " + std::to_string(cfg.k) +
                          ", runs = " + std::to_string(runs));

  const auto on = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
  dissem::SimConfig off_cfg = cfg;
  off_cfg.ltnc.enable_reachability_bounds = false;
  const auto off = metrics::run_monte_carlo(Scheme::kLtnc, off_cfg, runs);

  TextTable table({"metric", "bounds ON", "bounds OFF"});
  table.add_row({"build reaches target %",
                 TextTable::num(100 * on.build_target_rate, 1),
                 TextTable::num(100 * off.build_target_rate, 1)});
  table.add_row({"mean relative degree deviation %",
                 TextTable::num(100 * on.build_mean_relative_deviation, 2),
                 TextTable::num(100 * off.build_mean_relative_deviation, 2)});
  table.add_row({"communication overhead %",
                 TextTable::num(100 * on.overhead.mean(), 1),
                 TextTable::num(100 * off.overhead.mean(), 1)});
  table.add_row({"mean completion round",
                 TextTable::num(on.mean_completion.mean(), 1),
                 TextTable::num(off.mean_completion.mean(), 1)});
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nexpected: OFF accepts unreachable degrees, so builds fall "
               "short of their targets far more often.\n";
  return 0;
}
