// Shared helpers for the figure-reproduction benches.
//
// Every bench accepts:
//   --full         paper-scale parameters (slow; default is laptop scale)
//   --csv          machine-readable output instead of the boxed table
//   --nodes=N --k=K --runs=R   explicit overrides
// and prints the scale it ran at, so EXPERIMENTS.md numbers are
// reproducible by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace ltnc::bench {

struct Args {
  bool full = false;
  bool csv = false;
  std::size_t nodes = 0;  ///< 0 = bench default
  std::size_t k = 0;
  std::size_t runs = 0;
  std::uint64_t seed = 1;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      auto value_of = [&](std::string_view prefix) -> long long {
        return std::atoll(std::string(arg.substr(prefix.size())).c_str());
      };
      if (arg == "--full") {
        args.full = true;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (arg.rfind("--nodes=", 0) == 0) {
        args.nodes = static_cast<std::size_t>(value_of("--nodes="));
      } else if (arg.rfind("--k=", 0) == 0) {
        args.k = static_cast<std::size_t>(value_of("--k="));
      } else if (arg.rfind("--runs=", 0) == 0) {
        args.runs = static_cast<std::size_t>(value_of("--runs="));
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed = static_cast<std::uint64_t>(value_of("--seed="));
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "flags: --full --csv --nodes=N --k=K --runs=R --seed=S\n";
        std::exit(0);
      }
    }
    return args;
  }
};

inline void print_header(const std::string& title, const std::string& scale) {
  std::cout << "\n=== " << title << " ===\n" << scale << "\n\n";
}

}  // namespace ltnc::bench
