// Figure 7b — "Average time to complete" as a function of the code length
// k, for WC / LTNC / RLNC.
//
// Paper sweep: k ∈ {512 … 4096} at N = 1000, 25 runs. Default here:
// k ∈ {128, 256, 512, 1024} at N = 128, 3 runs. Expected shape: all grow
// ~linearly in k; WC ≫ LTNC ≳ RLNC, and LTNC's relative gap to RLNC
// narrows as k grows.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  const std::size_t nodes = args.nodes != 0 ? args.nodes
                            : (args.full ? 1000 : 128);
  const std::size_t runs = args.runs != 0 ? args.runs : (args.full ? 25 : 3);
  std::vector<std::size_t> ks = args.full
                                    ? std::vector<std::size_t>{512, 1024,
                                                               2048, 4096}
                                    : std::vector<std::size_t>{128, 256, 512,
                                                               1024};
  if (args.k != 0) ks = {args.k};

  bench::print_header(
      "Figure 7b: average time to complete vs code length",
      "N = " + std::to_string(nodes) + ", runs = " + std::to_string(runs) +
          (args.full ? " [paper scale]" : " [default scale; --full for paper]"));

  TextTable table({"k", "WC", "LTNC", "RLNC", "LTNC/RLNC"});
  for (const std::size_t k : ks) {
    dissem::SimConfig cfg;
    cfg.num_nodes = nodes;
    cfg.k = k;
    cfg.payload_bytes = 64;
    cfg.seed = args.seed;
    cfg.max_rounds = 120 * k;

    const auto wc = metrics::run_monte_carlo(Scheme::kWc, cfg, runs);
    const auto ltnc = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
    const auto rlnc = metrics::run_monte_carlo(Scheme::kRlnc, cfg, runs);
    table.add_row(
        {TextTable::integer(static_cast<long long>(k)),
         TextTable::num(wc.mean_completion.mean(), 1),
         TextTable::num(ltnc.mean_completion.mean(), 1),
         TextTable::num(rlnc.mean_completion.mean(), 1),
         TextTable::num(
             ltnc.mean_completion.mean() /
                 (rlnc.mean_completion.mean() > 0
                      ? rlnc.mean_completion.mean()
                      : 1.0),
             3)});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\npaper shape: WC slowest by far; LTNC within ~1.3x of RLNC, "
               "ratio shrinking with k.\n";
  return 0;
}
