// Extension bench — generations over LTNC (paper §I points at Avalanche's
// generations [2][13] as a directly applicable optimisation).
//
// Sweeps the generation count G for a fixed content of K blocks through a
// source → relay → sink pipeline and reports the classic trade-off:
// smaller code vectors and cheaper decoding versus more packets needed
// (each generation pays its own LT overhead and the coupon-collector cost
// of hitting the last incomplete generation).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/generations.hpp"
#include "lt/lt_encoder.hpp"

namespace {

using namespace ltnc;

struct RunResult {
  std::size_t packets_to_sink = 0;
  std::uint64_t decode_ctrl_ops = 0;
  std::size_t header_bytes = 0;
  bool ok = false;
};

RunResult run(std::size_t total_blocks, std::size_t generations,
              std::size_t payload_bytes, std::uint64_t seed) {
  const std::size_t per_gen = total_blocks / generations;
  const auto all =
      lt::make_native_payloads(total_blocks, payload_bytes, seed);
  std::vector<lt::LtEncoder> sources;
  for (std::size_t g = 0; g < generations; ++g) {
    std::vector<Payload> slice(all.begin() + g * per_gen,
                               all.begin() + (g + 1) * per_gen);
    sources.emplace_back(std::move(slice));
  }

  core::GenerationConfig cfg;
  cfg.total_blocks = total_blocks;
  cfg.generations = generations;
  cfg.payload_bytes = payload_bytes;
  core::GenerationedLtnc relay(cfg);
  core::GenerationedLtnc sink(cfg);

  Rng rng(seed + 5);
  RunResult result;
  const std::size_t budget = 80 * total_blocks;
  for (std::size_t step = 0; step < budget && !sink.complete(); ++step) {
    const auto g = static_cast<std::uint32_t>(rng.uniform(generations));
    relay.receive(core::GenerationPacket{g, sources[g].encode(rng)});
    if (auto pkt = relay.recode(rng)) {
      result.header_bytes += pkt->wire_bytes() - payload_bytes;
      if (!sink.would_reject(pkt->generation, pkt->packet.coeffs)) {
        sink.receive(*pkt);
        ++result.packets_to_sink;
      }
    }
  }
  result.ok = sink.complete();
  result.decode_ctrl_ops = sink.decode_ops().control_total();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ltnc;
  const auto args = bench::Args::parse(argc, argv);
  const std::size_t total = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  constexpr std::size_t m = 64;

  bench::print_header(
      "Extension: generations over LTNC (header size vs coding efficiency)",
      "K = " + std::to_string(total) + " blocks, m = " + std::to_string(m) +
          " B, source->relay->sink pipeline");

  TextTable table({"generations", "code vector B", "pkts to sink",
                   "decode ctrl ops", "complete"});
  for (const std::size_t g : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                              std::size_t{64}}) {
    if (total % g != 0) continue;
    const RunResult r = run(total, g, m, args.seed);
    table.add_row({TextTable::integer(static_cast<long long>(g)),
                   TextTable::integer(static_cast<long long>(
                       (total / g + 7) / 8)),
                   TextTable::integer(
                       static_cast<long long>(r.packets_to_sink)),
                   TextTable::integer(
                       static_cast<long long>(r.decode_ctrl_ops)),
                   r.ok ? "yes" : "NO"});
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nexpected: headers and decode control shrink with G while "
               "the packets needed grow (per-generation LT overhead).\n";
  return 0;
}
