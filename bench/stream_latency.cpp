// Streaming latency figure: block-completion latency quantiles and
// deadline-miss rate versus channel loss, across all three stream
// harness drivers.
//
//   section "sim"    deterministic SimChannel fleet, fixed (non-adaptive)
//                    redundancy so the miss-rate-vs-loss curve is a clean
//                    monotone readout of what loss does to a fixed budget
//   section "sim-adaptive"  same sweep with the loss estimate fed back
//                    into the budget — what the deadline scheduler buys
//   section "udp"    real datagrams over loopback (microsecond domain),
//                    sender-side emulated loss
//   section "event"  timer-wheel broadcast at 10^4 receivers (10^5 with
//                    --full) — the scale point
//
// Writes BENCH_stream.json (one flat array; bench/diff_bench.py globs
// it). Flags: --full --seed=S --out=FILE --receivers=N
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/emitter.hpp"
#include "stream/harness.hpp"

namespace {

using ltnc::metrics::RunRecord;
using ltnc::stream::StreamConfig;
using ltnc::stream::StreamRunStats;

/// The laptop-scale stream shape shared by the sim and UDP sweeps: 4 KiB
/// blocks of k=64 symbols, a deadline four block-cadences out. ε = 1.9
/// budgets ~2.9k symbols per block — what small-block LT belief
/// propagation needs for a ≥ 99.9 % first-try decode (see the probe
/// table in tests/stream_test.cpp; BP overhead shrinks as k grows).
StreamConfig sim_stream_shape(std::uint64_t blocks, std::uint64_t seed) {
  StreamConfig s;
  s.block_bytes = 4096;
  s.symbol_bytes = 64;  // k = 64
  s.ticks_per_block = 16;
  s.deadline_ticks = 64;
  s.window = 8;
  s.total_blocks = blocks;
  s.base_overhead = 1.9;
  s.seed = seed;
  return s;
}

RunRecord base_record(const std::string& section, double loss,
                      const StreamConfig& stream, const StreamRunStats& r,
                      double seconds) {
  RunRecord rec;
  rec.set("section", section);
  rec.set("loss", loss);
  rec.set("receivers", static_cast<std::uint64_t>(r.receivers));
  rec.set("blocks", r.blocks);
  rec.set("k", static_cast<std::uint64_t>(stream.k()));
  rec.set("block_bytes", static_cast<std::uint64_t>(stream.block_bytes));
  rec.set("deadline_ticks", static_cast<std::uint64_t>(stream.deadline_ticks));
  rec.set("completed", r.completed);
  rec.set("missed", r.missed);
  rec.set("miss_rate", r.miss_rate());
  rec.set("verify_failures", r.verify_failures);
  rec.set("latency_p50", r.latency_p50);
  rec.set("latency_p99", r.latency_p99);
  rec.set("latency_p999", r.latency_p999);
  rec.set("latency_samples", r.latency_samples);
  rec.set("goodput_bytes", r.goodput_bytes);
  rec.set("source_frames", r.source_frames);
  rec.set("expired_frames", r.expired_frames);
  rec.set("duration_ticks", r.duration_ticks);
  rec.set("every_receiver_decoded", r.every_receiver_decoded);
  rec.set("seconds", seconds);
  return rec;
}

template <typename Fn>
RunRecord timed(Fn&& fn, const std::string& section, double loss,
                const StreamConfig& stream) {
  const auto start = std::chrono::steady_clock::now();
  const StreamRunStats r = fn();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  RunRecord rec = base_record(section, loss, stream, r, seconds);
  std::cerr << "  " << section << " loss=" << loss << ": miss_rate="
            << r.miss_rate() << " p50=" << r.latency_p50
            << " p99=" << r.latency_p99 << " (" << seconds << "s)\n";
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_stream.json";
  std::size_t receivers_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::atoll(std::string(arg.substr(7)).c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--receivers=", 0) == 0) {
      receivers_override = static_cast<std::size_t>(
          std::atoll(std::string(arg.substr(12)).c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --full --seed=S --out=FILE --receivers=N\n";
      return 0;
    }
  }

  std::vector<RunRecord> records;
  // Well-separated loss points so the fixed-budget miss-rate curve steps
  // decisively: ~0 %, <1 %, a few %, then a collapse past the budget.
  const std::vector<double> losses{0.0, 0.15, 0.3, 0.5};

  // --- SimChannel sweeps ----------------------------------------------------
  const std::uint64_t sim_blocks = full ? 128 : 48;
  std::cerr << "stream_latency: sim sweep (" << sim_blocks << " blocks)\n";
  for (const double loss : losses) {
    ltnc::stream::SimStreamConfig cfg;
    cfg.stream = sim_stream_shape(sim_blocks, seed);
    cfg.channel.loss_rate = loss;
    cfg.channel.seed = seed;
    cfg.receivers = receivers_override != 0 ? receivers_override : 4;
    cfg.adaptive_budget = false;
    cfg.seed = seed;
    records.push_back(timed([&] { return run_sim_stream(cfg); }, "sim", loss,
                            cfg.stream));
  }
  for (const double loss : losses) {
    ltnc::stream::SimStreamConfig cfg;
    cfg.stream = sim_stream_shape(sim_blocks, seed);
    cfg.stream.base_overhead = 1.2;  // lean base; the estimator pads it
    cfg.stream.slack_boost_ticks = 16;
    cfg.channel.loss_rate = loss;
    cfg.channel.seed = seed;
    cfg.receivers = receivers_override != 0 ? receivers_override : 4;
    cfg.adaptive_budget = true;
    cfg.seed = seed;
    records.push_back(timed([&] { return run_sim_stream(cfg); },
                            "sim-adaptive", loss, cfg.stream));
  }

  // --- UDP loopback sweep ---------------------------------------------------
  // Microsecond domain: 100 blocks/s cadence, 50 ms deadline.
  const std::uint64_t udp_blocks = full ? 100 : 30;
  std::cerr << "stream_latency: udp sweep (" << udp_blocks << " blocks)\n";
  for (const double loss : {0.0, 0.2, 0.4}) {
    ltnc::stream::UdpStreamConfig cfg;
    cfg.stream = sim_stream_shape(udp_blocks, seed);
    cfg.stream.ticks_per_block = 10'000;  // 100 fps
    cfg.stream.deadline_ticks = 50'000;   // 50 ms
    cfg.receivers = receivers_override != 0 ? receivers_override : 2;
    cfg.loss_rate = loss;
    cfg.seed = seed;
    records.push_back(timed([&] { return run_udp_stream(cfg); }, "udp", loss,
                            cfg.stream));
  }

  // --- Event-engine scale point ---------------------------------------------
  const std::size_t event_receivers = full ? 100'000 : 10'000;
  std::cerr << "stream_latency: event scale (" << event_receivers
            << " receivers)\n";
  {
    ltnc::stream::EventStreamConfig cfg;
    cfg.stream.block_bytes = 512;  // small blocks keep 10^5 decoders in RAM
    cfg.stream.symbol_bytes = 64;  // k = 8
    cfg.stream.ticks_per_block = 16;
    cfg.stream.deadline_ticks = 48;
    cfg.stream.window = 4;
    cfg.stream.total_blocks = 16;
    cfg.stream.base_overhead = 3.0;  // k = 8 BP wants ~4x (see probe table)
    cfg.stream.seed = seed;
    cfg.receivers = event_receivers;
    cfg.loss_rate = 0.05;
    cfg.seed = seed;
    RunRecord rec = timed([&] { return run_event_stream(cfg); }, "event",
                          cfg.loss_rate, cfg.stream);
    records.push_back(std::move(rec));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  ltnc::metrics::write_json(out, records);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
