// Event-engine scaling bench — the tentpole's scaling law, written to
// BENCH_sim.json so successive PRs can track it.
//
// For each swarm size n the bench runs a single-content LTNC dissemination
// (k = 16, 16-byte blocks — small content keeps the 10⁶-node point inside
// a laptop's RAM; the engine cost scales with *events*, not content size)
// through the discrete-event engine in kScale mode and records:
//
//   events/sec        wheel events dispatched per wall-clock second
//   peak RSS          ru_maxrss of a *forked* child that ran only that
//                     point — allocator retention from a previous (bigger)
//                     point can never leak into a smaller one
//   completion rounds how many gossip periods full dissemination took
//
// plus a lockstep-vs-engine wall-clock comparison at small n, where both
// drivers produce statistically equivalent runs.
//
// Default sweep: n ∈ {10³, 10⁴, 10⁵}. --full adds the 10⁶-node point
// (minutes, not hours, on one core). --nodes=N runs a single point — the
// CI smoke uses --nodes=100000.
//
// Usage: sim_events [--full] [--nodes=N] [--seed=S] [--out=FILE]
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "dissemination/event_engine.hpp"
#include "dissemination/simulation.hpp"
#include "metrics/emitter.hpp"

namespace {

using namespace ltnc;

dissem::SimConfig scaling_config(std::size_t n, std::uint64_t seed) {
  dissem::SimConfig cfg;
  cfg.num_nodes = n;
  cfg.k = 16;
  cfg.payload_bytes = 16;
  cfg.seed = seed;
  cfg.source_pushes_per_round = 4;
  cfg.max_rounds = 5000;
  return cfg;
}

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

/// One sweep point, run to completion in *this* process. Returns the
/// record (without splicing) for the given n.
metrics::RunRecord run_point(std::size_t n, std::uint64_t seed) {
  const dissem::SimConfig cfg = scaling_config(n, seed);
  dissem::EventSimulation sim(dissem::Scheme::kLtnc, cfg,
                              dissem::EngineMode::kScale);
  const auto start = std::chrono::steady_clock::now();
  const dissem::SimResult result = sim.run();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();

  metrics::RunRecord record = metrics::sim_run_record(result);
  record.set("engine", std::string("event-scale"));
  record.set("seconds", seconds);
  record.set("events_processed", sim.events_processed());
  record.set("events_per_sec",
             static_cast<double>(sim.events_processed()) / seconds);
  record.set("materialized_nodes",
             static_cast<std::uint64_t>(sim.core().materialized_count()));
  record.set("peak_rss_kb", static_cast<std::uint64_t>(peak_rss_kb()));
  return record;
}

/// Renders a record as a standalone JSON object line (the emitter writes
/// arrays; the parent splices child objects into one array).
std::string record_as_json_object(const metrics::RunRecord& record) {
  std::ostringstream out;
  metrics::write_json(out, {record});
  const std::string array = out.str();
  const std::size_t open = array.find('{');
  const std::size_t close = array.rfind('}');
  return array.substr(open, close - open + 1);
}

/// Forks a child that runs one sweep point and writes its record through
/// a pipe — ru_maxrss then measures exactly that point's footprint.
std::string run_point_forked(std::size_t n, std::uint64_t seed) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::cerr << "pipe failed: " << std::strerror(errno) << "\n";
    return {};
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::cerr << "fork failed; running n=" << n << " in-process\n";
    close(fds[0]);
    close(fds[1]);
    return record_as_json_object(run_point(n, seed));
  }
  if (pid == 0) {
    close(fds[0]);
    const std::string json = record_as_json_object(run_point(n, seed));
    std::size_t off = 0;
    while (off < json.size()) {
      const ssize_t w =
          write(fds[1], json.data() + off, json.size() - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  std::string json;
  char buf[4096];
  ssize_t r = 0;
  while ((r = read(fds[0], buf, sizeof buf)) > 0) {
    json.append(buf, static_cast<std::size_t>(r));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || json.empty()) {
    std::cerr << "child for n=" << n << " failed\n";
    return {};
  }
  return json;
}

/// Lockstep vs event engine at small n: both run the same config (the
/// trajectories differ — kScale re-orders draws — but the work is the
/// same dissemination).
std::string run_speedup_point(std::size_t n, std::uint64_t seed) {
  const dissem::SimConfig cfg = scaling_config(n, seed);

  const auto t0 = std::chrono::steady_clock::now();
  const dissem::SimResult lock =
      dissem::run_simulation(dissem::Scheme::kLtnc, cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const dissem::SimResult event = dissem::run_event_simulation(
      dissem::Scheme::kLtnc, cfg, dissem::EngineMode::kScale);
  const auto t2 = std::chrono::steady_clock::now();

  const double lock_s = std::chrono::duration<double>(t1 - t0).count();
  const double event_s = std::chrono::duration<double>(t2 - t1).count();

  metrics::RunRecord record;
  record.set("engine", std::string("lockstep-vs-event"));
  record.set("num_nodes", static_cast<std::uint64_t>(n));
  record.set("lockstep_seconds", lock_s);
  record.set("lockstep_rounds",
             static_cast<std::uint64_t>(lock.rounds_run));
  record.set("event_seconds", event_s);
  record.set("event_rounds", static_cast<std::uint64_t>(event.rounds_run));
  record.set("speedup", lock_s / event_s);
  record.set("both_complete", lock.all_complete && event.all_complete);
  return record_as_json_object(record);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::size_t only_nodes = 0;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_sim.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--nodes=", 0) == 0) {
      only_nodes = static_cast<std::size_t>(
          std::atoll(std::string(arg.substr(8)).c_str()));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::atoll(std::string(arg.substr(7)).c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --full --nodes=N --seed=S --out=FILE\n";
      return 0;
    }
  }

  std::vector<std::size_t> sweep{1000, 10000, 100000};
  if (full) sweep.push_back(1000000);
  if (only_nodes != 0) sweep.assign(1, only_nodes);

  std::vector<std::string> objects;
  for (const std::size_t n : sweep) {
    std::cerr << "sim_events: n=" << n << "...\n";
    std::string json = run_point_forked(n, seed);
    if (json.empty()) return 1;
    std::cerr << "  " << json << "\n";
    objects.push_back(std::move(json));
  }
  if (only_nodes == 0) {
    std::cerr << "sim_events: lockstep-vs-event at n=1000...\n";
    objects.push_back(run_speedup_point(1000, seed));
    std::cerr << "  " << objects.back() << "\n";
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  out << "[\n";
  for (std::size_t i = 0; i < objects.size(); ++i) {
    out << "  " << objects[i] << (i + 1 < objects.size() ? ",\n" : "\n");
  }
  out << "]\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
