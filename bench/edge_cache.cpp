// Edge-cache capacity sweep: hit rate, source offload and backhaul bytes
// versus cache capacity, as a fraction of the catalog's working set.
//
//   section "event"   timer-wheel driver, 10^4 users (10^5 with --full),
//                     Zipf(1.0) over 256 contents, k=32, 64-B symbols —
//                     the scale curve
//   section "udp"     real UDP loopback through session::Endpoint at a
//                     coarse capacity grid — the wire-truth curve
//   section "sim"     one SimChannel row under loss (full frame path)
//   section "policy"  LRU and LFU reactive-warming rows at half the
//                     working set (no proactive fill)
//
// The popularity placement is nested by construction (same per-content
// fill stream at every capacity), so the event and udp curves must be
// monotone: hit rate and offload non-decreasing in capacity, backhaul
// non-increasing, and the catalog head fully served at capacity >= the
// working set. The bench asserts this and exits nonzero on violation —
// the CI smoke run turns a placement regression into a red build.
//
// Writes BENCH_cache.json (one flat array; bench/diff_bench.py globs
// it). Flags: --full --seed=S --out=FILE --users=N
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "cache/harness.hpp"
#include "metrics/emitter.hpp"

namespace {

using ltnc::cache::CacheRunStats;
using ltnc::cache::CacheScenario;
using ltnc::cache::Policy;
using ltnc::metrics::RunRecord;

/// The catalog shape shared by every section: Zipf(1.0) over 256
/// contents of k=32 symbols, 64 B each — small enough that the event
/// driver holds 10^5 users in RAM, large enough that capacity choices
/// matter.
CacheScenario base_scenario(std::uint64_t seed) {
  CacheScenario s;
  s.catalog.contents = 256;
  s.catalog.alpha = 1.0;
  s.catalog.k = 32;
  s.catalog.symbol_bytes = 64;
  s.catalog.seed = seed;
  s.cache.policy = Policy::kPopularity;
  s.requests_per_user = 4;
  s.seed = seed;
  return s;
}

RunRecord cache_record(const std::string& section, const std::string& policy,
                       double capacity_frac, const CacheScenario& sc,
                       const CacheRunStats& r, double seconds) {
  RunRecord rec;
  rec.set("section", section);
  rec.set("policy", policy);
  rec.set("capacity_frac", capacity_frac);
  rec.set("capacity_bytes", static_cast<std::uint64_t>(sc.cache.capacity_bytes));
  rec.set("contents", static_cast<std::uint64_t>(sc.catalog.contents));
  rec.set("alpha", sc.catalog.alpha);
  rec.set("k", static_cast<std::uint64_t>(sc.catalog.k));
  rec.set("symbol_bytes", static_cast<std::uint64_t>(sc.catalog.symbol_bytes));
  rec.set("users", static_cast<std::uint64_t>(r.users));
  rec.set("requests", r.requests);
  rec.set("completed", r.completed);
  rec.set("failed", r.failed);
  rec.set("verify_failures", r.verify_failures);
  rec.set("full_hits", r.full_hits);
  rec.set("partial_hits", r.partial_hits);
  rec.set("misses", r.misses);
  rec.set("hit_rate", r.hit_rate());
  rec.set("full_hit_rate", r.full_hit_rate());
  rec.set("head_hit_rate", r.head_hit_rate());
  rec.set("offload", r.offload());
  rec.set("symbols_from_edge", r.symbols_from_edge);
  rec.set("symbols_from_source", r.symbols_from_source);
  rec.set("edge_bytes", r.edge_bytes);
  rec.set("backhaul_bytes", r.backhaul_bytes);
  rec.set("fill_bytes", r.fill_bytes);
  rec.set("evicted_entries", r.evicted_entries);
  rec.set("replacements", r.replacements);
  rec.set("cache_bytes_used", r.cache_bytes_used);
  rec.set("latency_p50", r.latency_p50);
  rec.set("latency_p99", r.latency_p99);
  rec.set("latency_samples", r.latency_samples);
  rec.set("seconds", seconds);
  return rec;
}

struct CurvePoint {
  double frac = 0.0;
  double hit = 0.0;
  double offload = 0.0;
  std::uint64_t backhaul = 0;
};

/// Asserts the capacity curve's shape; returns false (and complains on
/// stderr) when the placement lost its nesting property.
bool check_monotone(const std::string& section,
                    const std::vector<CurvePoint>& curve) {
  bool ok = true;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const CurvePoint& a = curve[i - 1];
    const CurvePoint& b = curve[i];
    if (b.hit + 1e-12 < a.hit) {
      std::cerr << section << ": hit rate fell " << a.hit << " -> " << b.hit
                << " between frac " << a.frac << " and " << b.frac << "\n";
      ok = false;
    }
    if (b.offload + 1e-12 < a.offload) {
      std::cerr << section << ": offload fell " << a.offload << " -> "
                << b.offload << " between frac " << a.frac << " and "
                << b.frac << "\n";
      ok = false;
    }
    if (b.backhaul > a.backhaul) {
      std::cerr << section << ": backhaul rose " << a.backhaul << " -> "
                << b.backhaul << " between frac " << a.frac << " and "
                << b.frac << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_cache.json";
  std::size_t users_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--full") {
      full = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<std::uint64_t>(
          std::atoll(std::string(arg.substr(7)).c_str()));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--users=", 0) == 0) {
      users_override = static_cast<std::size_t>(
          std::atoll(std::string(arg.substr(8)).c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --full --seed=S --out=FILE --users=N\n";
      return 0;
    }
  }

  std::vector<RunRecord> records;
  bool curves_ok = true;
  double head_at_ws = -1.0;

  const std::size_t ws = ltnc::cache::working_set_bytes(
      base_scenario(seed).catalog, base_scenario(seed).cache);
  std::cerr << "edge_cache: working set = " << ws << " bytes\n";

  // --- event-engine capacity sweep -----------------------------------------
  const std::size_t event_users =
      users_override != 0 ? users_override : (full ? 100'000 : 10'000);
  const std::vector<double> fracs{0.0, 0.125, 0.25, 0.5, 0.75, 1.0, 1.25};
  std::cerr << "edge_cache: event sweep (" << event_users << " users)\n";
  std::vector<CurvePoint> event_curve;
  for (const double frac : fracs) {
    ltnc::cache::EventCacheConfig cfg;
    cfg.scenario = base_scenario(seed);
    cfg.scenario.users = event_users;
    cfg.scenario.cache.capacity_bytes =
        static_cast<std::size_t>(static_cast<double>(ws) * frac);
    const auto start = std::chrono::steady_clock::now();
    const CacheRunStats r = run_event_cache(cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::cerr << "  event frac=" << frac << ": hit=" << r.hit_rate()
              << " offload=" << r.offload() << " backhaul=" << r.backhaul_bytes
              << " (" << seconds << "s)\n";
    event_curve.push_back({frac, r.hit_rate(), r.offload(), r.backhaul_bytes});
    if (frac == 1.0) head_at_ws = r.head_hit_rate();
    records.push_back(
        cache_record("event", "popularity", frac, cfg.scenario, r, seconds));
  }
  curves_ok = check_monotone("event", event_curve) && curves_ok;

  // --- UDP loopback coarse sweep -------------------------------------------
  const std::vector<double> udp_fracs{0.0, 0.5, 1.25};
  std::cerr << "edge_cache: udp sweep\n";
  std::vector<CurvePoint> udp_curve;
  for (const double frac : udp_fracs) {
    ltnc::cache::UdpCacheConfig cfg;
    cfg.scenario = base_scenario(seed);
    cfg.scenario.users = 8;
    cfg.scenario.cache.capacity_bytes =
        static_cast<std::size_t>(static_cast<double>(ws) * frac);
    const auto start = std::chrono::steady_clock::now();
    const CacheRunStats r = run_udp_cache(cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::cerr << "  udp frac=" << frac << ": hit=" << r.hit_rate()
              << " offload=" << r.offload() << " backhaul=" << r.backhaul_bytes
              << " (" << seconds << "s)\n";
    udp_curve.push_back({frac, r.hit_rate(), r.offload(), r.backhaul_bytes});
    records.push_back(
        cache_record("udp", "popularity", frac, cfg.scenario, r, seconds));
  }
  curves_ok = check_monotone("udp", udp_curve) && curves_ok;

  // --- SimChannel row under loss (full frame path) -------------------------
  {
    ltnc::cache::SimCacheConfig cfg;
    cfg.scenario = base_scenario(seed);
    cfg.scenario.users = 16;
    cfg.scenario.loss_rate = 0.05;
    cfg.scenario.cache.capacity_bytes = ws;
    const auto start = std::chrono::steady_clock::now();
    const CacheRunStats r = run_sim_cache(cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::cerr << "  sim loss=0.05: hit=" << r.hit_rate()
              << " completed=" << r.completed << "/" << r.requests << " ("
              << seconds << "s)\n";
    records.push_back(
        cache_record("sim", "popularity", 1.0, cfg.scenario, r, seconds));
  }

  // --- reactive policies at half the working set ---------------------------
  for (const Policy policy : {Policy::kLru, Policy::kLfu}) {
    ltnc::cache::EventCacheConfig cfg;
    cfg.scenario = base_scenario(seed);
    cfg.scenario.users = full ? 10'000 : 2'000;
    cfg.scenario.cache.policy = policy;
    cfg.scenario.cache.capacity_bytes = ws / 2;
    const auto start = std::chrono::steady_clock::now();
    const CacheRunStats r = run_event_cache(cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::cerr << "  policy " << ltnc::cache::policy_name(policy)
              << ": hit=" << r.hit_rate() << " evicted=" << r.evicted_entries
              << " (" << seconds << "s)\n";
    records.push_back(cache_record("policy", ltnc::cache::policy_name(policy),
                                   0.5, cfg.scenario, r, seconds));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  ltnc::metrics::write_json(out, records);
  std::cout << "wrote " << out_path << "\n";

  if (!curves_ok) {
    std::cerr << "edge_cache: capacity curves are not monotone\n";
    return 1;
  }
  if (head_at_ws < 0.9) {
    std::cerr << "edge_cache: head hit rate " << head_at_ws
              << " < 0.9 at capacity = working set\n";
    return 1;
  }
  return 0;
}
