// Figure 7a — "Convergence": proportion of nodes that decoded all k native
// packets as a function of time (gossip periods), for WC / LTNC / RLNC.
//
// Paper scale: N = 1000 nodes, k = 2048, m = 256 KB, 25 Monte-Carlo runs.
// Default here: N = 200, k = 512, 3 runs (--full restores paper scale).
// Expected shape: RLNC fastest, LTNC close behind, WC far slower — the
// benefit of coding is preserved.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "metrics/experiment.hpp"

int main(int argc, char** argv) {
  using namespace ltnc;
  using dissem::Scheme;
  const auto args = bench::Args::parse(argc, argv);

  dissem::SimConfig cfg;
  cfg.num_nodes = args.nodes != 0 ? args.nodes : (args.full ? 1000 : 200);
  cfg.k = args.k != 0 ? args.k : (args.full ? 2048 : 512);
  cfg.payload_bytes = 64;
  cfg.seed = args.seed;
  cfg.max_rounds = 80 * cfg.k;
  const std::size_t runs = args.runs != 0 ? args.runs : (args.full ? 25 : 3);

  bench::print_header(
      "Figure 7a: convergence (fraction of complete nodes vs gossip period)",
      "N = " + std::to_string(cfg.num_nodes) + ", k = " + std::to_string(cfg.k) +
          ", m = " + std::to_string(cfg.payload_bytes) + " B (sim), runs = " +
          std::to_string(runs) +
          (args.full ? " [paper scale]" : " [default scale; --full for paper]"));

  const auto wc = metrics::run_monte_carlo(Scheme::kWc, cfg, runs);
  const auto ltnc = metrics::run_monte_carlo(Scheme::kLtnc, cfg, runs);
  const auto rlnc = metrics::run_monte_carlo(Scheme::kRlnc, cfg, runs);

  // Sample the traces on a common grid of ~24 rows.
  std::size_t longest = std::max(
      {wc.convergence_trace.size(), ltnc.convergence_trace.size(),
       rlnc.convergence_trace.size()});
  if (longest == 0) longest = 1;
  const std::size_t step = std::max<std::size_t>(1, longest / 24);

  auto at = [](const std::vector<double>& trace, std::size_t i) {
    if (trace.empty()) return 0.0;
    return i < trace.size() ? trace[i] : trace.back();
  };

  TextTable table({"time", "WC %", "LTNC %", "RLNC %"});
  for (std::size_t i = 0; i < longest + step; i += step) {
    const std::size_t t = std::min(i, longest - 1);
    table.add_row({TextTable::integer(static_cast<long long>(t + 1)),
                   TextTable::num(100 * at(wc.convergence_trace, t), 1),
                   TextTable::num(100 * at(ltnc.convergence_trace, t), 1),
                   TextTable::num(100 * at(rlnc.convergence_trace, t), 1)});
    if (t + 1 >= longest) break;
  }
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  TextTable summary(
      {"scheme", "mean completion", "rounds to all-complete", "verified"});
  auto row = [&](const char* name, const metrics::MonteCarloResult& r) {
    summary.add_row({name, TextTable::num(r.mean_completion.mean(), 1),
                     TextTable::num(r.rounds_to_finish.mean(), 1),
                     r.payloads_verified ? "yes" : "NO"});
  };
  row("WC", wc);
  row("LTNC", ltnc);
  row("RLNC", rlnc);
  std::cout << "\n";
  summary.print(std::cout);
  std::cout << "\npaper shape: RLNC fastest, LTNC slightly behind (~ +30% at "
               "k=2048), WC far slower.\n";
  return 0;
}
